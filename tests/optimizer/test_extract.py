"""Tests for candidate index extraction."""

from __future__ import annotations

import pytest

from repro.db import Index
from repro.optimizer.extract import MAX_COMPOSITE_WIDTH, extract_indices
from repro.query import delete, select, update
from repro.query.ast import InsertStatement

SALES = "shop.sales"
CUSTOMERS = "shop.customers"


class TestSelectExtraction:
    def test_single_column_candidates(self):
        query = select(SALES).where_between("amount", 0, 10).count_star().build()
        candidates = extract_indices(query)
        assert Index(SALES, ("amount",)) in candidates

    def test_join_columns_extracted(self):
        query = (
            select(SALES)
            .join(CUSTOMERS, on=("customer_id", "customer_id"))
            .where_between("amount", 0, 10, table=SALES)
            .build()
        )
        candidates = extract_indices(query)
        assert Index(SALES, ("customer_id",)) in candidates
        assert Index(CUSTOMERS, ("customer_id",)) in candidates

    def test_eq_then_range_composite(self):
        query = (
            select(SALES)
            .where_eq("product_id", 3)
            .where_between("amount", 0, 10)
            .build()
        )
        candidates = extract_indices(query)
        assert Index(SALES, ("product_id", "amount")) in candidates

    def test_covering_composite_for_count_star(self):
        query = (
            select(SALES)
            .where_between("amount", 0, 10)
            .where_between("sale_date", 0, 10)
            .count_star()
            .build()
        )
        candidates = extract_indices(query)
        covering = [
            ix for ix in candidates
            if set(ix.columns) == {"amount", "sale_date"}
        ]
        assert covering, "expected a covering composite"

    def test_order_by_columns_extracted(self):
        query = (
            select(SALES)
            .where_ge("amount", 5)
            .order_by("sale_date")
            .build()
        )
        assert Index(SALES, ("sale_date",)) in extract_indices(query)

    def test_width_bounded(self):
        query = (
            select(SALES)
            .where_eq("product_id", 1)
            .where_eq("customer_id", 2)
            .where_between("amount", 0, 10)
            .where_between("sale_date", 0, 10)
            .build()
        )
        for index in extract_indices(query):
            assert len(index.columns) <= MAX_COMPOSITE_WIDTH


class TestWriteExtraction:
    def test_update_extracts_where_not_set(self):
        stmt = (
            update(SALES).set("amount").where_between("sale_date", 0, 10).build()
        )
        candidates = extract_indices(stmt)
        assert Index(SALES, ("sale_date",)) in candidates
        assert Index(SALES, ("amount",)) not in candidates

    def test_delete_extracts_where(self):
        stmt = delete(SALES).where_between("sale_date", 0, 10).build()
        assert Index(SALES, ("sale_date",)) in extract_indices(stmt)

    def test_insert_extracts_nothing(self):
        assert extract_indices(InsertStatement(SALES, 100)) == frozenset()

    def test_update_on_set_column_only_yields_nothing(self):
        stmt = update(SALES).set("amount").where_between("amount", 0, 10).build()
        assert extract_indices(stmt) == frozenset()
