"""Tests for selectivity estimation."""

from __future__ import annotations

import pytest

from repro.optimizer.selectivity import (
    combined_selectivity,
    join_selectivity,
    predicate_selectivity,
    selectivity_by_column,
)
from repro.query.ast import ColumnRef, EqualityPredicate, RangePredicate

SALES = "shop.sales"


class TestPredicateSelectivity:
    def test_equality(self, toy_stats):
        pred = EqualityPredicate(ColumnRef(SALES, "product_id"), 5)
        expected = 1.0 / toy_stats.column_stats(SALES, "product_id").n_distinct
        assert predicate_selectivity(toy_stats, pred) == pytest.approx(expected)

    def test_range(self, toy_stats):
        col = toy_stats.column_stats(SALES, "amount")
        width = (col.max_value - col.min_value) * 0.25
        pred = RangePredicate(
            ColumnRef(SALES, "amount"), lo=col.min_value, hi=col.min_value + width
        )
        assert predicate_selectivity(toy_stats, pred) == pytest.approx(0.25, rel=0.01)

    def test_combined_independence(self, toy_stats):
        p1 = EqualityPredicate(ColumnRef(SALES, "product_id"), 1)
        p2 = RangePredicate(ColumnRef(SALES, "amount"), lo=0, hi=5000)
        combined = combined_selectivity(toy_stats, [p1, p2])
        assert combined == pytest.approx(
            predicate_selectivity(toy_stats, p1)
            * predicate_selectivity(toy_stats, p2)
        )

    def test_empty_conjunction(self, toy_stats):
        assert combined_selectivity(toy_stats, []) == 1.0


class TestSelectivityByColumn:
    def test_same_column_predicates_multiply(self, toy_stats):
        preds = [
            RangePredicate(ColumnRef(SALES, "amount"), lo=0, hi=5000),
            RangePredicate(ColumnRef(SALES, "amount"), lo=2500, hi=10_000),
        ]
        sels = selectivity_by_column(toy_stats, preds)
        sel, is_eq = sels["amount"]
        # Per-column selectivities multiply (0.5 * 0.75), they are not
        # interval-intersected — the standard independence treatment.
        assert sel == pytest.approx(0.5 * 0.75, rel=0.01)
        assert not is_eq

    def test_equality_flag(self, toy_stats):
        sels = selectivity_by_column(
            toy_stats, [EqualityPredicate(ColumnRef(SALES, "product_id"), 1)]
        )
        _, is_eq = sels["product_id"]
        assert is_eq


class TestJoinSelectivity:
    def test_uses_larger_ndv(self, toy_stats):
        sel = join_selectivity(
            toy_stats, SALES, "customer_id", "shop.customers", "customer_id"
        )
        ndv = max(
            toy_stats.column_stats(SALES, "customer_id").n_distinct,
            toy_stats.column_stats("shop.customers", "customer_id").n_distinct,
        )
        assert sel == pytest.approx(1.0 / ndv)
