"""Property test: plan-template costing ≡ the scalar cost model, bit-exactly.

For random schemas, statements (SELECT with joins/ORDER BY, UPDATE, DELETE,
INSERT) and candidate/configuration sets, the batched
:class:`~repro.optimizer.template.PlanTemplate` must reproduce the scalar
``CostModel.explain`` result *to the last bit*: total cost with ``==`` (no
tolerance — the template replays the exact summation order), plus identical
used and plan-used index sets, including UPDATE/DELETE/INSERT maintenance
terms and the INLJ cross-table feature when enabled. This is the contract
that lets the what-if memo, the IBG, and the golden totWork curves treat
template pricing as a drop-in for plan optimization.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from repro.core.bitset import IndexUniverse, iter_submasks
from repro.db import Index
from repro.db.schema import Catalog, Column, ColumnType, Database, Table
from repro.db.stats import ColumnStats, StatsRepository, TableStats
from repro.optimizer import CostModel, CostModelConfig, WhatIfOptimizer
from repro.optimizer.template import build_plan_template
from repro.query.ast import (
    ColumnRef,
    DeleteStatement,
    EqualityPredicate,
    InsertStatement,
    JoinPredicate,
    OrderBy,
    RangePredicate,
    SelectQuery,
    UpdateStatement,
)

_COLUMN_TYPES = (ColumnType.INT, ColumnType.FLOAT, ColumnType.DATE)


def _random_stats(rng: random.Random, n_tables: int) -> StatsRepository:
    tables = []
    all_stats = []
    for t in range(n_tables):
        n_cols = rng.randint(3, 5)
        columns = [
            Column(f"c{i}", rng.choice(_COLUMN_TYPES)) for i in range(n_cols)
        ]
        table = Table(f"rnd.t{t}", columns)
        tables.append(table)
        row_count = rng.randint(50, 200_000)
        col_stats = {}
        for column in columns:
            lo = rng.uniform(-100.0, 100.0)
            width = rng.uniform(0.0, 1000.0)
            col_stats[column.name] = ColumnStats(
                n_distinct=rng.randint(1, max(1, row_count)),
                min_value=lo,
                max_value=lo + width,
                null_frac=rng.choice([0.0, 0.0, rng.uniform(0.0, 0.5)]),
            )
        all_stats.append(TableStats(table, row_count, col_stats))
    catalog = Catalog([Database("rnd", tables)])
    return StatsRepository(catalog, all_stats)


def _random_predicates(
    rng: random.Random, stats: StatsRepository, table: str, max_preds: int
) -> Tuple:
    table_stats = stats.table_stats(table)
    columns = [c.name for c in table_stats.table.columns]
    preds = []
    for _ in range(rng.randint(0, max_preds)):
        name = rng.choice(columns)
        col = ColumnRef(table, name)
        cs = table_stats.column_stats(name)
        if rng.random() < 0.5:
            preds.append(EqualityPredicate(col, rng.uniform(cs.min_value, cs.max_value)))
        else:
            lo = rng.uniform(cs.min_value - 10.0, cs.max_value)
            hi = lo + rng.uniform(0.0, cs.domain_width + 10.0)
            choice = rng.random()
            if choice < 0.33:
                preds.append(RangePredicate(col, lo=lo, hi=None))
            elif choice < 0.66:
                preds.append(RangePredicate(col, lo=None, hi=hi))
            else:
                preds.append(RangePredicate(col, lo=lo, hi=hi))
    return tuple(preds)


def _random_statement(rng: random.Random, stats: StatsRepository):
    names = sorted(t.qualified_name for t in stats.catalog.tables)
    kind = rng.random()
    if kind < 0.55:  # SELECT, possibly multi-table
        k = rng.randint(1, len(names))
        tables = tuple(rng.sample(names, k))
        predicates = []
        for table in tables:
            predicates.extend(_random_predicates(rng, stats, table, 2))
        joins = []
        for i in range(1, len(tables)):
            if rng.random() < 0.8:  # else a cross join step
                left_t = tables[rng.randrange(i)]
                right_t = tables[i]
                left_c = rng.choice(
                    [c.name for c in stats.table_stats(left_t).table.columns]
                )
                right_c = rng.choice(
                    [c.name for c in stats.table_stats(right_t).table.columns]
                )
                joins.append(JoinPredicate(
                    ColumnRef(left_t, left_c), ColumnRef(right_t, right_c)
                ))
        order_by = None
        if rng.random() < 0.4:
            table = rng.choice(tables)
            columns = [c.name for c in stats.table_stats(table).table.columns]
            picked = rng.sample(columns, rng.randint(1, min(2, len(columns))))
            order_by = OrderBy(tuple(ColumnRef(table, c) for c in picked))
        projection = ()
        if rng.random() < 0.5:
            table = rng.choice(tables)
            columns = [c.name for c in stats.table_stats(table).table.columns]
            projection = (ColumnRef(table, rng.choice(columns)),)
        return SelectQuery(
            tables=tables, predicates=tuple(predicates), joins=tuple(joins),
            projection=projection, order_by=order_by,
        )
    table = rng.choice(names)
    if kind < 0.75:
        columns = [c.name for c in stats.table_stats(table).table.columns]
        set_cols = tuple(rng.sample(columns, rng.randint(1, len(columns))))
        return UpdateStatement(
            table=table, set_columns=set_cols,
            predicates=_random_predicates(rng, stats, table, 2),
        )
    if kind < 0.9:
        return DeleteStatement(
            table=table, predicates=_random_predicates(rng, stats, table, 2)
        )
    return InsertStatement(table=table, row_count=rng.randint(1, 500))


def _random_candidates(
    rng: random.Random, stats: StatsRepository, statement
) -> List[Index]:
    candidates = set()
    tables = statement.tables_referenced()
    for _ in range(rng.randint(0, 6)):
        table = rng.choice(tables)
        columns = [c.name for c in stats.table_stats(table).table.columns]
        width = rng.randint(1, min(2, len(columns)))
        candidates.add(Index(table, tuple(rng.sample(columns, width))))
    return sorted(candidates)


def _assert_template_matches_scalar(seed: int, enable_inlj: bool) -> None:
    rng = random.Random(seed)
    stats = _random_stats(rng, rng.randint(1, 3))
    config = CostModelConfig(enable_inlj=enable_inlj)
    model = CostModel(stats, config)
    statement = _random_statement(rng, stats)
    candidates = _random_candidates(rng, stats, statement)

    universe = IndexUniverse(candidates)
    covered = universe.encode(candidates)
    template = build_plan_template(model, universe, statement, covered)
    assert template is not None

    masks = list(iter_submasks(covered))
    if len(masks) > 24:
        masks = [covered, 0] + rng.sample(masks, 22)
    for mask in masks:
        plan = model.explain(statement, universe.decode(mask))
        cost, used_mask, plan_used_mask = template.entry(mask)
        assert cost == plan.total_cost, (
            f"cost mismatch at mask {mask:b}: template {cost!r} "
            f"!= scalar {plan.total_cost!r}\n{plan.describe()}"
        )
        assert used_mask == universe.encode(
            WhatIfOptimizer._used_indices(plan)
        ), f"used-set mismatch at mask {mask:b}"
        assert plan_used_mask == universe.encode(
            WhatIfOptimizer._plan_indices(plan)
        ), f"plan-used-set mismatch at mask {mask:b}"


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_template_matches_scalar_hash_joins(seed):
    _assert_template_matches_scalar(seed, enable_inlj=False)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_template_matches_scalar_with_inlj(seed):
    """Index-nested-loop joins stay table-local in this cost model (the
    outer cardinality is configuration-independent), so the template must
    price them exactly too."""
    _assert_template_matches_scalar(seed, enable_inlj=True)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_whatif_mask_costs_match_scalar_cost_model(seed):
    """End-to-end: WhatIfOptimizer's memoized/batched mask pricing equals
    the raw CostModel, including after universe growth forces a template
    rebuild."""
    rng = random.Random(seed)
    stats = _random_stats(rng, rng.randint(1, 2))
    optimizer = WhatIfOptimizer(stats)
    model = CostModel(stats)
    statement = _random_statement(rng, stats)
    candidates = _random_candidates(rng, stats, statement)
    half = candidates[: len(candidates) // 2]

    for pool in (half, candidates):  # second round grows the universe
        full = optimizer.mask_universe.encode(pool)
        masks = list(iter_submasks(full))
        if len(masks) > 16:
            masks = [full, 0] + rng.sample(masks, 14)
        batched = optimizer.statement_costs(statement).costs(masks)
        for mask, got in zip(masks, batched):
            expected = model.statement_cost(
                statement, optimizer.mask_universe.decode(mask)
            )
            assert got == expected
