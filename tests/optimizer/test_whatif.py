"""Tests for the memoizing what-if optimizer facade."""

from __future__ import annotations

import pytest

from repro.db import Index
from repro.optimizer import WhatIfOptimizer
from repro.query import select, update

SALES = "shop.sales"
CUSTOMERS = "shop.customers"


@pytest.fixture()
def query():
    return (
        select(SALES).where_between("amount", 0, 150).count_star().build()
    )


class TestCaching:
    def test_repeat_call_hits_cache(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        config = frozenset({Index(SALES, ("amount",))})
        first = optimizer.cost(query, config)
        second = optimizer.cost(query, config)
        assert first == second
        assert optimizer.whatif_calls == 2
        assert optimizer.optimizations == 1

    def test_irrelevant_indices_share_cache_entry(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        config_a = frozenset({Index(CUSTOMERS, ("region",))})
        config_b = frozenset({Index(CUSTOMERS, ("signup_date",))})
        optimizer.cost(query, config_a)
        optimizer.cost(query, config_b)
        # Both reduce to the empty relevant subset.
        assert optimizer.optimizations == 1

    def test_reset_and_clear(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        optimizer.cost(query, frozenset())
        optimizer.reset_counters()
        assert optimizer.whatif_calls == 0
        assert optimizer.optimizations == 0
        optimizer.clear_cache()
        optimizer.cost(query, frozenset())
        assert optimizer.optimizations == 1


class TestUsedSets:
    def test_used_contains_access_index(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        index = Index(SALES, ("amount",))
        _, used = optimizer.optimize(query, frozenset({index}))
        assert index in used

    def test_unused_index_not_in_used(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        useless = Index(SALES, ("sale_date",))
        _, used = optimizer.optimize(query, frozenset({useless}))
        assert useless not in used

    def test_maintenance_index_counts_as_used(self, toy_stats):
        optimizer = WhatIfOptimizer(toy_stats)
        col = toy_stats.column_stats(SALES, "sale_date")
        stmt = (
            update(SALES)
            .set("amount")
            .where_between("sale_date", col.min_value, col.min_value + 30)
            .build()
        )
        index = Index(SALES, ("amount",))
        _, used = optimizer.optimize(stmt, frozenset({index}))
        assert index in used


class TestBenefit:
    def test_positive_for_useful_index(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        index = Index(SALES, ("amount",))
        assert optimizer.benefit(query, {index}, frozenset()) > 0

    def test_negative_for_update_maintenance(self, toy_stats):
        optimizer = WhatIfOptimizer(toy_stats)
        col = toy_stats.column_stats(SALES, "sale_date")
        stmt = (
            update(SALES)
            .set("amount")
            .where_between("sale_date", col.min_value, col.min_value + 100)
            .build()
        )
        index = Index(SALES, ("amount",))
        assert optimizer.benefit(stmt, {index}, frozenset()) < 0

    def test_explain_does_not_pollute_counters(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        optimizer.explain(query, frozenset())
        assert optimizer.whatif_calls == 0


class TestStatementIBG:
    """The per-statement IBG cache behind bulk mask costing."""

    def _rich_query(self, toy_stats):
        amount = toy_stats.column_stats(SALES, "amount")
        date = toy_stats.column_stats(SALES, "sale_date")
        return (
            select(SALES)
            .where_between("amount", amount.min_value,
                           amount.min_value + amount.domain_width * 0.05)
            .where_between("sale_date", date.min_value,
                           date.min_value + date.domain_width * 0.05)
            .count_star()
            .build()
        )

    def test_statement_ibg_cached_and_grown(self, toy_stats):
        from repro.optimizer import extract_indices

        optimizer = WhatIfOptimizer(toy_stats)
        query = self._rich_query(toy_stats)
        candidates = sorted(extract_indices(query))
        first = optimizer.statement_ibg(query, frozenset(candidates[:1]))
        again = optimizer.statement_ibg(query, frozenset(candidates[:1]))
        assert again is first
        grown = optimizer.statement_ibg(query, frozenset(candidates))
        assert grown.candidates >= first.candidates

    def test_statement_ibg_enforces_node_cap(self, toy_stats):
        from repro.optimizer import extract_indices

        optimizer = WhatIfOptimizer(toy_stats)
        query = self._rich_query(toy_stats)
        candidates = frozenset(extract_indices(query))
        with pytest.raises(RuntimeError):
            optimizer.statement_ibg(query, candidates, max_nodes=1)

    def test_failed_build_memoized_not_retried(self, toy_stats):
        from repro.optimizer import extract_indices

        optimizer = WhatIfOptimizer(toy_stats)
        query = self._rich_query(toy_stats)
        union = optimizer.relevant_mask(
            query, optimizer.mask_universe.encode(extract_indices(query))
        )
        assert optimizer._statement_ibg(query, union, max_nodes=1) is None
        spent = optimizer.optimizations
        # Covered retries answer from the failure memo without re-optimizing.
        assert optimizer._statement_ibg(query, union, max_nodes=1) is None
        assert optimizer.optimizations == spent

    def test_bulk_costs_fall_back_when_capped(self, toy_stats):
        from repro.optimizer import extract_indices

        optimizer = WhatIfOptimizer(toy_stats)
        query = self._rich_query(toy_stats)
        universe = optimizer.mask_universe
        full = universe.encode(extract_indices(query))
        masks = []
        sub = full
        while True:
            masks.append(sub)
            if sub == 0:
                break
            sub = (sub - 1) & full
        # As if the build had capped out at the default bulk-costing cap.
        optimizer._ibg_failed[query] = (full, 4096)
        costs = optimizer.statement_costs(query).costs(masks)
        direct = [optimizer.cost_mask(query, mask) for mask in masks]
        assert costs == direct

    def test_larger_cap_retries_after_failure(self, toy_stats):
        from repro.optimizer import extract_indices

        optimizer = WhatIfOptimizer(toy_stats)
        query = self._rich_query(toy_stats)
        candidates = frozenset(extract_indices(query))
        with pytest.raises(RuntimeError):
            optimizer.statement_ibg(query, candidates, max_nodes=1)
        # A failure at a small cap must not poison builds at a larger cap.
        graph = optimizer.statement_ibg(query, candidates, max_nodes=4096)
        assert graph.node_count >= 1

    def test_ibg_cache_is_bounded(self, toy_stats):
        from repro.optimizer.whatif import _IBG_CACHE_LIMIT

        optimizer = WhatIfOptimizer(toy_stats)
        amount = toy_stats.column_stats(SALES, "amount")
        for k in range(_IBG_CACHE_LIMIT + 10):
            lo = amount.min_value + k  # distinct literals -> distinct statements
            query = (
                select(SALES).where_between("amount", lo, lo + 25).count_star().build()
            )
            optimizer.statement_ibg(query, frozenset({Index(SALES, ("amount",))}))
        assert len(optimizer._ibg_cache) <= _IBG_CACHE_LIMIT


class TestPlanTemplates:
    """The batched costing engine behind memo misses (ISSUE 4)."""

    def test_one_build_per_statement(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        a = Index(SALES, ("amount",))
        b = Index(SALES, ("sale_date",))
        # Candidates registered up front (the WFA/WFIT shape: parts are
        # interned before any costing), so menus never need a rebuild.
        optimizer.mask_universe.encode({a, b})
        for config in (frozenset(), {a}, {b}, {a, b}):
            optimizer.cost(query, frozenset(config))
        stats = optimizer.cache_stats()
        assert stats["template_builds"] == 1
        assert stats["optimizations"] == 1          # one plan derivation total
        assert stats["template_mask_costs"] == 4    # every miss menu-priced
        assert stats["template_hits"] == 3

    def test_universe_growth_triggers_rebuild(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        optimizer.cost(query, frozenset({Index(SALES, ("amount",))}))
        # A new candidate on the statement's table invalidates the menus.
        optimizer.cost(query, frozenset({Index(SALES, ("sale_date",))}))
        assert optimizer.cache_stats()["template_builds"] == 2
        # …but growth on an unrelated table does not.
        optimizer.cost(
            query,
            frozenset({Index(SALES, ("amount",)),
                       Index(CUSTOMERS, ("region",))}),
        )
        assert optimizer.cache_stats()["template_builds"] == 2

    def test_template_cache_cleared_with_caches(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        optimizer.cost(query, frozenset())
        optimizer.clear_cache()
        optimizer.cost(query, frozenset())
        assert optimizer.cache_stats()["template_builds"] == 2

    def test_batched_plan_usage_matches_scalar(self, toy_stats):
        from repro.optimizer import extract_indices
        from repro.query import update

        col = toy_stats.column_stats(SALES, "sale_date")
        stmt = (
            update(SALES)
            .set("amount")
            .where_between("sale_date", col.min_value, col.min_value + 30)
            .build()
        )
        optimizer = WhatIfOptimizer(toy_stats)
        universe = optimizer.mask_universe
        full = universe.encode(extract_indices(stmt))
        masks = [full, 0, full & -full]
        batched = optimizer.plan_usage_masks(stmt, masks)
        for mask, (cost, plan_used) in zip(masks, batched):
            scalar_cost, scalar_used = optimizer.plan_usage(
                stmt, universe.decode(mask)
            )
            assert cost == scalar_cost
            assert plan_used == universe.encode(scalar_used)

    def test_cache_stats_exposes_template_counters(self, toy_optimizer):
        stats = toy_optimizer.cache_stats()
        for key in ("template_hits", "template_builds", "template_evictions",
                    "template_hit_rate", "template_mask_costs"):
            assert key in stats
        assert stats["template_hit_rate"] == 0.0
