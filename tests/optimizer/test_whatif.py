"""Tests for the memoizing what-if optimizer facade."""

from __future__ import annotations

import pytest

from repro.db import Index
from repro.optimizer import WhatIfOptimizer
from repro.query import select, update

SALES = "shop.sales"
CUSTOMERS = "shop.customers"


@pytest.fixture()
def query():
    return (
        select(SALES).where_between("amount", 0, 150).count_star().build()
    )


class TestCaching:
    def test_repeat_call_hits_cache(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        config = frozenset({Index(SALES, ("amount",))})
        first = optimizer.cost(query, config)
        second = optimizer.cost(query, config)
        assert first == second
        assert optimizer.whatif_calls == 2
        assert optimizer.optimizations == 1

    def test_irrelevant_indices_share_cache_entry(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        config_a = frozenset({Index(CUSTOMERS, ("region",))})
        config_b = frozenset({Index(CUSTOMERS, ("signup_date",))})
        optimizer.cost(query, config_a)
        optimizer.cost(query, config_b)
        # Both reduce to the empty relevant subset.
        assert optimizer.optimizations == 1

    def test_reset_and_clear(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        optimizer.cost(query, frozenset())
        optimizer.reset_counters()
        assert optimizer.whatif_calls == 0
        assert optimizer.optimizations == 0
        optimizer.clear_cache()
        optimizer.cost(query, frozenset())
        assert optimizer.optimizations == 1


class TestUsedSets:
    def test_used_contains_access_index(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        index = Index(SALES, ("amount",))
        _, used = optimizer.optimize(query, frozenset({index}))
        assert index in used

    def test_unused_index_not_in_used(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        useless = Index(SALES, ("sale_date",))
        _, used = optimizer.optimize(query, frozenset({useless}))
        assert useless not in used

    def test_maintenance_index_counts_as_used(self, toy_stats):
        optimizer = WhatIfOptimizer(toy_stats)
        col = toy_stats.column_stats(SALES, "sale_date")
        stmt = (
            update(SALES)
            .set("amount")
            .where_between("sale_date", col.min_value, col.min_value + 30)
            .build()
        )
        index = Index(SALES, ("amount",))
        _, used = optimizer.optimize(stmt, frozenset({index}))
        assert index in used


class TestBenefit:
    def test_positive_for_useful_index(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        index = Index(SALES, ("amount",))
        assert optimizer.benefit(query, {index}, frozenset()) > 0

    def test_negative_for_update_maintenance(self, toy_stats):
        optimizer = WhatIfOptimizer(toy_stats)
        col = toy_stats.column_stats(SALES, "sale_date")
        stmt = (
            update(SALES)
            .set("amount")
            .where_between("sale_date", col.min_value, col.min_value + 100)
            .build()
        )
        index = Index(SALES, ("amount",))
        assert optimizer.benefit(stmt, {index}, frozenset()) < 0

    def test_explain_does_not_pollute_counters(self, toy_stats, query):
        optimizer = WhatIfOptimizer(toy_stats)
        optimizer.explain(query, frozenset())
        assert optimizer.whatif_calls == 0
