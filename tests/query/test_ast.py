"""Tests for the statement AST invariants."""

from __future__ import annotations

import pytest

from repro.query.ast import (
    ColumnRef,
    DeleteStatement,
    EqualityPredicate,
    InsertStatement,
    JoinPredicate,
    OrderBy,
    RangePredicate,
    SelectQuery,
    UpdateStatement,
)

L = "tpch.lineitem"
O = "tpch.orders"


class TestPredicates:
    def test_range_needs_a_bound(self):
        with pytest.raises(ValueError):
            RangePredicate(ColumnRef(L, "l_tax"))

    def test_range_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            RangePredicate(ColumnRef(L, "l_tax"), lo=5, hi=1)

    def test_range_table_property(self):
        pred = RangePredicate(ColumnRef(L, "l_tax"), lo=0)
        assert pred.table == L

    def test_join_must_span_tables(self):
        with pytest.raises(ValueError):
            JoinPredicate(ColumnRef(L, "a"), ColumnRef(L, "b"))

    def test_join_column_on(self):
        join = JoinPredicate(ColumnRef(L, "l_orderkey"), ColumnRef(O, "o_orderkey"))
        assert join.column_on(L).column == "l_orderkey"
        assert join.column_on(O).column == "o_orderkey"
        assert join.touches(L) and join.touches(O)
        with pytest.raises(ValueError):
            join.column_on("tpch.part")

    def test_order_by_single_table(self):
        with pytest.raises(ValueError):
            OrderBy((ColumnRef(L, "a"), ColumnRef(O, "b")))
        with pytest.raises(ValueError):
            OrderBy(())


class TestSelectQuery:
    def test_requires_tables(self):
        with pytest.raises(ValueError):
            SelectQuery(tables=())

    def test_rejects_duplicate_tables(self):
        with pytest.raises(ValueError):
            SelectQuery(tables=(L, L))

    def test_rejects_predicate_on_foreign_table(self):
        with pytest.raises(ValueError):
            SelectQuery(
                tables=(L,),
                predicates=(EqualityPredicate(ColumnRef(O, "o_orderkey"), 1),),
            )

    def test_rejects_join_on_unreferenced_table(self):
        with pytest.raises(ValueError):
            SelectQuery(
                tables=(L,),
                joins=(JoinPredicate(
                    ColumnRef(L, "l_orderkey"), ColumnRef(O, "o_orderkey")
                ),),
            )

    def test_columns_needed_gathers_everything(self):
        query = SelectQuery(
            tables=(L, O),
            predicates=(RangePredicate(ColumnRef(L, "l_shipdate"), lo=0, hi=10),),
            joins=(JoinPredicate(
                ColumnRef(L, "l_orderkey"), ColumnRef(O, "o_orderkey")
            ),),
            projection=(ColumnRef(L, "l_tax"),),
        )
        assert query.columns_needed(L) == {"l_shipdate", "l_orderkey", "l_tax"}
        assert query.columns_needed(O) == {"o_orderkey"}

    def test_predicates_on_filters_by_table(self):
        pred_l = RangePredicate(ColumnRef(L, "l_tax"), lo=0)
        pred_o = EqualityPredicate(ColumnRef(O, "o_orderstatus"), "F")
        query = SelectQuery(tables=(L, O), predicates=(pred_l, pred_o))
        assert query.predicates_on(L) == (pred_l,)
        assert query.predicates_on(O) == (pred_o,)

    def test_is_update_false(self):
        assert not SelectQuery(tables=(L,)).is_update

    def test_hashable(self):
        q1 = SelectQuery(tables=(L,))
        q2 = SelectQuery(tables=(L,))
        assert hash(q1) == hash(q2)
        assert q1 == q2


class TestWriteStatements:
    def test_update_requires_set_columns(self):
        with pytest.raises(ValueError):
            UpdateStatement(L, ())

    def test_update_predicates_same_table(self):
        with pytest.raises(ValueError):
            UpdateStatement(
                L, ("l_tax",),
                predicates=(RangePredicate(ColumnRef(O, "o_totalprice"), lo=0),),
            )

    def test_update_columns_needed(self):
        stmt = UpdateStatement(
            L, ("l_tax",),
            predicates=(RangePredicate(ColumnRef(L, "l_extendedprice"), lo=0),),
        )
        assert stmt.columns_needed(L) == {"l_tax", "l_extendedprice"}
        assert stmt.columns_needed(O) == frozenset()
        assert stmt.is_update

    def test_insert_row_count(self):
        with pytest.raises(ValueError):
            InsertStatement(L, row_count=0)
        stmt = InsertStatement(L, row_count=5)
        assert stmt.is_update
        assert stmt.tables_referenced() == (L,)
        assert stmt.predicates_on(L) == ()

    def test_delete(self):
        stmt = DeleteStatement(
            L, predicates=(RangePredicate(ColumnRef(L, "l_tax"), hi=1),)
        )
        assert stmt.is_update
        assert stmt.columns_needed(L) == {"l_tax"}
        with pytest.raises(ValueError):
            DeleteStatement(
                L, predicates=(RangePredicate(ColumnRef(O, "o_totalprice"), lo=0),)
            )
