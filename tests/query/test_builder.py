"""Tests for the fluent statement builders."""

from __future__ import annotations

import pytest

from repro.query import delete, select, update
from repro.query.ast import EqualityPredicate, RangePredicate


class TestSelectBuilder:
    def test_single_table_count_star(self):
        query = (
            select("tpch.lineitem")
            .where_between("l_shipdate", 100, 200)
            .count_star()
            .build()
        )
        assert query.tables == ("tpch.lineitem",)
        assert not query.projection
        pred = query.predicates[0]
        assert isinstance(pred, RangePredicate)
        assert (pred.lo, pred.hi) == (100, 200)

    def test_join_chain(self):
        query = (
            select("tpch.lineitem")
            .join("tpch.orders", on=("l_orderkey", "o_orderkey"))
            .where_between("l_tax", 0, 0.1, table="tpch.lineitem")
            .build()
        )
        assert query.tables == ("tpch.lineitem", "tpch.orders")
        assert len(query.joins) == 1
        join = query.joins[0]
        assert join.left.column == "l_orderkey"
        assert join.right.column == "o_orderkey"

    def test_ambiguous_column_needs_table(self):
        builder = select("tpch.lineitem").join(
            "tpch.orders", on=("l_orderkey", "o_orderkey")
        )
        with pytest.raises(ValueError, match="ambiguous"):
            builder.where_eq("l_tax", 1)

    def test_one_sided_ranges(self):
        query = (
            select("tpch.lineitem").where_ge("l_tax", 0.01).where_le("l_quantity", 10).build()
        )
        lo_pred, hi_pred = query.predicates
        assert lo_pred.lo == 0.01 and lo_pred.hi is None
        assert hi_pred.hi == 10 and hi_pred.lo is None

    def test_projection_and_order_by(self):
        query = (
            select("tpch.lineitem")
            .project("l_tax")
            .order_by("l_shipdate")
            .where_ge("l_tax", 0)
            .build()
        )
        assert query.projection[0].column == "l_tax"
        assert query.order_by.columns[0].column == "l_shipdate"

    def test_where_eq(self):
        query = select("tpch.orders").where_eq("o_orderstatus", "F").build()
        pred = query.predicates[0]
        assert isinstance(pred, EqualityPredicate)
        assert pred.value == "F"


class TestUpdateDeleteBuilders:
    def test_update(self):
        stmt = (
            update("tpch.lineitem")
            .set("l_tax")
            .where_between("l_extendedprice", 100, 200)
            .build()
        )
        assert stmt.set_columns == ("l_tax",)
        assert stmt.predicates[0].lo == 100

    def test_update_multiple_sets(self):
        stmt = update("tpch.lineitem").set("l_tax", "l_discount").build()
        assert stmt.set_columns == ("l_tax", "l_discount")

    def test_delete(self):
        stmt = delete("tpch.lineitem").where_eq("l_linenumber", 3).build()
        assert stmt.table == "tpch.lineitem"
        assert isinstance(stmt.predicates[0], EqualityPredicate)
