"""Tests for the SQL-subset parser, including the paper's example queries."""

from __future__ import annotations

import pytest

from repro.query.ast import (
    EqualityPredicate,
    InsertStatement,
    RangePredicate,
    SelectQuery,
    UpdateStatement,
)
from repro.query.parser import ParseError, parse_statement, to_sql


class TestPaperQueries:
    """The two statements quoted verbatim in §6.1 must parse."""

    PAPER_SELECT = """
        SELECT count(*)
        FROM tpce.security table1, tpce.company table2,
             tpce.daily_market table0
        WHERE table1.s_pe BETWEEN 63.278 AND 86.091
          AND table1.s_exch_date BETWEEN '1995-05-12-01.46.40'
              AND '2006-07-10-01.46.40'
          AND table2.co_open_date BETWEEN '1812-08-05-03.21.02'
              AND '1812-12-12-03.21.02'
          AND table1.s_symb = table0.dm_s_symb
          AND table2.co_id = table1.s_co_id
    """

    PAPER_UPDATE = """
        UPDATE tpch.lineitem
        SET l_tax = l_tax + RANDOM_SIGN() * 0.000001
        WHERE l_extendedprice BETWEEN 65522.378 AND 66256.943
    """

    def test_select_example(self):
        query = parse_statement(self.PAPER_SELECT)
        assert isinstance(query, SelectQuery)
        assert set(query.tables) == {
            "tpce.security", "tpce.company", "tpce.daily_market"
        }
        assert len(query.joins) == 2
        assert len(query.predicates) == 3
        assert not query.projection  # count(*)
        # timestamp literals became numeric day offsets
        exch = next(
            p for p in query.predicates if p.column.column == "s_exch_date"
        )
        assert isinstance(exch, RangePredicate)
        assert exch.lo is not None and exch.lo < exch.hi

    def test_update_example(self):
        stmt = parse_statement(self.PAPER_UPDATE)
        assert isinstance(stmt, UpdateStatement)
        assert stmt.table == "tpch.lineitem"
        assert stmt.set_columns == ("l_tax",)
        assert len(stmt.predicates) == 1
        pred = stmt.predicates[0]
        assert isinstance(pred, RangePredicate)
        assert pred.lo == pytest.approx(65522.378)
        assert pred.hi == pytest.approx(66256.943)


class TestSelectParsing:
    def test_simple_single_table(self):
        query = parse_statement(
            "SELECT count(*) FROM tpch.lineitem WHERE l_tax BETWEEN 0 AND 0.04"
        )
        assert query.tables == ("tpch.lineitem",)
        assert len(query.predicates) == 1

    def test_projection_list(self):
        query = parse_statement(
            "SELECT l_tax, l_quantity FROM tpch.lineitem WHERE l_tax >= 0.01"
        )
        assert [c.column for c in query.projection] == ["l_tax", "l_quantity"]

    def test_comparison_operators(self):
        for op, field in (("<=", "hi"), (">=", "lo"), ("<", "hi"), (">", "lo")):
            query = parse_statement(
                f"SELECT count(*) FROM tpch.lineitem WHERE l_tax {op} 0.05"
            )
            pred = query.predicates[0]
            assert isinstance(pred, RangePredicate)
            assert getattr(pred, field) == pytest.approx(0.05)

    def test_string_equality(self):
        query = parse_statement(
            "SELECT count(*) FROM tpch.orders WHERE o_orderstatus = 'F'"
        )
        pred = query.predicates[0]
        assert isinstance(pred, EqualityPredicate)
        assert pred.value == "F"

    def test_order_by(self):
        query = parse_statement(
            "SELECT l_tax FROM tpch.lineitem WHERE l_tax >= 0 ORDER BY l_shipdate"
        )
        assert query.order_by is not None
        assert query.order_by.columns[0].column == "l_shipdate"

    def test_alias_resolution(self):
        query = parse_statement(
            "SELECT count(*) FROM tpch.lineitem l, tpch.orders o "
            "WHERE l.l_orderkey = o.o_orderkey AND l.l_tax <= 0.02"
        )
        assert len(query.joins) == 1
        assert query.joins[0].left.table == "tpch.lineitem"

    def test_table_name_usable_as_alias(self):
        query = parse_statement(
            "SELECT count(*) FROM tpch.lineitem "
            "WHERE lineitem.l_tax BETWEEN 0 AND 0.01"
        )
        assert query.predicates[0].column.table == "tpch.lineitem"

    def test_unknown_alias_rejected(self):
        with pytest.raises(ParseError, match="alias"):
            parse_statement(
                "SELECT count(*) FROM tpch.lineitem l WHERE zz.l_tax <= 1"
            )

    def test_ambiguous_unqualified_column_rejected(self):
        with pytest.raises(ParseError, match="ambiguous"):
            parse_statement(
                "SELECT count(*) FROM tpch.lineitem l, tpch.orders o "
                "WHERE l_tax <= 1"
            )

    def test_between_requires_numeric(self):
        with pytest.raises(ParseError):
            parse_statement(
                "SELECT count(*) FROM tpch.orders "
                "WHERE o_orderstatus BETWEEN 'A' AND 'F'"
            )


class TestOtherStatements:
    def test_delete(self):
        stmt = parse_statement(
            "DELETE FROM tpch.lineitem WHERE l_shipdate BETWEEN 100 AND 200"
        )
        assert stmt.is_update
        assert stmt.table == "tpch.lineitem"

    def test_insert(self):
        stmt = parse_statement("INSERT INTO tpch.lineitem VALUES (1, 2, 3)")
        assert isinstance(stmt, InsertStatement)
        assert stmt.row_count == 1

    def test_multi_column_update(self):
        stmt = parse_statement(
            "UPDATE tpce.daily_market SET dm_close = 4, dm_vol = dm_vol + 1 "
            "WHERE dm_date BETWEEN 100 AND 110"
        )
        assert stmt.set_columns == ("dm_close", "dm_vol")

    def test_unsupported_statement(self):
        with pytest.raises(ParseError, match="unsupported"):
            parse_statement("CREATE TABLE foo (a int)")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT count(*) FROM")


class TestRoundTrip:
    STATEMENTS = [
        "SELECT count(*) FROM tpch.lineitem WHERE l_tax BETWEEN 0 AND 0.04",
        "SELECT count(*) FROM tpch.lineitem l, tpch.orders o "
        "WHERE l.l_orderkey = o.o_orderkey AND l.l_tax <= 0.02",
        "DELETE FROM tpch.lineitem WHERE l_shipdate >= 100",
        "UPDATE tpch.lineitem SET l_tax = 0 WHERE l_quantity <= 5",
    ]

    @pytest.mark.parametrize("sql", STATEMENTS)
    def test_parse_render_parse_fixpoint(self, sql):
        first = parse_statement(sql)
        rendered = to_sql(first)
        second = parse_statement(rendered)
        assert first.tables_referenced() == second.tables_referenced()
        assert to_sql(second) == rendered
