"""Property-based round-trip tests: random ASTs → SQL → AST."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.ast import (
    ColumnRef,
    DeleteStatement,
    EqualityPredicate,
    RangePredicate,
    SelectQuery,
    UpdateStatement,
)
from repro.query.parser import parse_statement, to_sql

TABLE = "tpch.lineitem"
COLUMNS = ("l_tax", "l_quantity", "l_extendedprice", "l_shipdate")

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def range_predicates(draw):
    column = draw(st.sampled_from(COLUMNS))
    lo = draw(finite)
    width = draw(st.floats(min_value=0, max_value=1e5, allow_nan=False))
    shape = draw(st.sampled_from(["both", "lo", "hi"]))
    ref = ColumnRef(TABLE, column)
    if shape == "both":
        return RangePredicate(ref, lo=lo, hi=lo + width)
    if shape == "lo":
        return RangePredicate(ref, lo=lo)
    return RangePredicate(ref, hi=lo)


@st.composite
def eq_predicates(draw):
    column = draw(st.sampled_from(COLUMNS))
    value = draw(finite)
    return EqualityPredicate(ColumnRef(TABLE, column), value)


@st.composite
def select_queries(draw):
    predicates = tuple(
        draw(st.lists(st.one_of(range_predicates(), eq_predicates()),
                      min_size=1, max_size=4))
    )
    projection = ()
    if draw(st.booleans()):
        projection = (ColumnRef(TABLE, draw(st.sampled_from(COLUMNS))),)
    return SelectQuery(
        tables=(TABLE,), predicates=predicates, projection=projection
    )


def _predicate_key(pred):
    if isinstance(pred, EqualityPredicate):
        return ("eq", pred.column, pytest.approx(pred.value))
    return ("range", pred.column, pred.lo, pred.hi)


class TestRoundTripProperties:
    @given(query=select_queries())
    @settings(max_examples=60, deadline=None)
    def test_select_roundtrip_preserves_semantics(self, query):
        reparsed = parse_statement(to_sql(query))
        assert isinstance(reparsed, SelectQuery)
        assert reparsed.tables == query.tables
        assert len(reparsed.predicates) == len(query.predicates)
        for original, parsed in zip(query.predicates, reparsed.predicates):
            assert type(original) is type(parsed)
            assert original.column == parsed.column
            if isinstance(original, RangePredicate):
                for bound in ("lo", "hi"):
                    a, b = getattr(original, bound), getattr(parsed, bound)
                    if a is None:
                        assert b is None
                    else:
                        assert b == pytest.approx(a, rel=1e-4, abs=1e-4)

    @given(
        column=st.sampled_from(COLUMNS),
        lo=finite,
        width=st.floats(min_value=0, max_value=1e4, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_update_roundtrip(self, column, lo, width):
        stmt = UpdateStatement(
            TABLE,
            ("l_discount",),
            (RangePredicate(ColumnRef(TABLE, column), lo=lo, hi=lo + width),),
        )
        reparsed = parse_statement(to_sql(stmt))
        assert isinstance(reparsed, UpdateStatement)
        assert reparsed.set_columns == ("l_discount",)
        assert reparsed.predicates[0].column.column == column

    @given(column=st.sampled_from(COLUMNS), hi=finite)
    @settings(max_examples=40, deadline=None)
    def test_delete_roundtrip(self, column, hi):
        stmt = DeleteStatement(
            TABLE, (RangePredicate(ColumnRef(TABLE, column), hi=hi),)
        )
        reparsed = parse_statement(to_sql(stmt))
        assert isinstance(reparsed, DeleteStatement)
        assert reparsed.table == TABLE
        assert reparsed.predicates[0].hi == pytest.approx(hi, rel=1e-4, abs=1e-4)
