"""In-memory crash-consistency model of :class:`repro.ioutil.FileIO`.

The durability layer funnels every filesystem touch through the
``FileIO`` surface; :class:`FaultyIO` mirrors that surface over plain
dictionaries while tracking, per file, both the *live* content (what the
OS page cache would hold) and the *durable* content (what an fsync has
actually pinned to stable storage). Directory entries get the same
treatment: a create or rename is volatile until the parent directory is
fsynced, exactly the POSIX contract ``atomic_write_json`` is written
against.

Faults are scheduled as "crash at the N-th occurrence of op X" (or of
any mutating op, for random kill points). When a scheduled point is hit
the model first simulates power loss — every file reverts to its durable
bytes, every non-durable name vanishes — and then raises
:class:`SimulatedCrash` into the caller. Whatever the test recovers from
afterwards is, by construction, only what a real crash could have left
behind.

Extra corruption knobs (``flip_byte``, ``truncate_durable``,
``drop_fsyncs``) model media corruption, torn sectors, and lying disks.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

__all__ = ["FaultyIO", "SimulatedCrash", "MUTATING_OPS"]

#: Ops that change on-disk state; ``schedule_crash(op="*")`` counts these.
MUTATING_OPS = ("write", "fsync", "truncate", "replace", "fsync_dir")


class SimulatedCrash(RuntimeError):
    """Raised at a scheduled fault point.

    By the time this propagates, the :class:`FaultyIO` has already
    discarded all volatile state — the test should abandon the crashed
    engine and run recovery against the same IO instance.
    """


class _File:
    __slots__ = ("live", "durable")

    def __init__(self, live: bytes = b"", durable: bytes = b"") -> None:
        self.live = bytearray(live)
        self.durable = bytes(durable)


class _Handle:
    __slots__ = ("path", "file", "closed")

    def __init__(self, path: str, file: _File) -> None:
        self.path = path
        self.file = file
        self.closed = False


class FaultyIO:
    """Drop-in ``FileIO`` substitute with scheduled crashes.

    * ``self._live``    — name -> file as the running process sees it
    * ``self._durable`` — name -> file as stable storage sees it (the
      mapping is what survives a crash; each file's ``durable`` bytes are
      its surviving content)
    """

    def __init__(self) -> None:
        self._live: Dict[str, _File] = {}
        self._durable: Dict[str, _File] = {}
        self._dirs: set = set()
        self.drop_fsyncs = False
        self.crashes = 0
        self.op_counts: Dict[str, int] = {}
        self._schedule: List[Dict[str, object]] = []

    # -- fault scheduling ------------------------------------------------------

    def schedule_crash(self, op: str = "*", at: int = 1, phase: str = "before") -> None:
        """Crash at the ``at``-th occurrence (1-based, counted from now) of
        ``op`` — ``"*"`` matches any op in :data:`MUTATING_OPS`. ``phase``
        is ``"before"`` (op never happens), ``"after"`` (op fully applied,
        then power loss), or ``"mid"`` (``write`` only: half the bytes
        land *and* reach the platter — the torn-record case)."""
        if phase not in ("before", "after", "mid"):
            raise ValueError(f"unknown phase {phase!r}")
        self._schedule.append({"op": op, "remaining": int(at), "phase": phase})

    def _tick(self, op: str) -> Optional[str]:
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        for entry in self._schedule:
            remaining = entry["remaining"]
            if not isinstance(remaining, int) or remaining <= 0:
                continue
            target = entry["op"]
            if target == "*":
                if op not in MUTATING_OPS:
                    continue
            elif target != op:
                continue
            entry["remaining"] = remaining - 1
            if remaining - 1 == 0:
                return str(entry["phase"])
        return None

    def crash(self) -> None:
        """Simulate power loss: only durable names and bytes survive."""
        survivors = {
            path: _File(f.durable, f.durable) for path, f in self._durable.items()
        }
        self._live = dict(survivors)
        self._durable = dict(survivors)
        self.crashes += 1

    def _crash_now(self, why: str) -> None:
        self.crash()
        raise SimulatedCrash(why)

    # -- corruption knobs ------------------------------------------------------

    def flip_byte(self, path, offset: int, xor: int = 0xFF) -> None:
        """Corrupt one byte of ``path`` in both live and durable content."""
        f = self._live[os.fspath(path)]
        f.live[offset] ^= xor
        if offset < len(f.durable):
            durable = bytearray(f.durable)
            durable[offset] ^= xor
            f.durable = bytes(durable)

    def truncate_durable(self, path, size: int) -> None:
        """Tear ``path`` down to ``size`` bytes, live and durable alike."""
        f = self._live[os.fspath(path)]
        del f.live[size:]
        f.durable = f.durable[:size]

    # -- handles ---------------------------------------------------------------

    def open_append(self, path) -> _Handle:
        p = os.fspath(path)
        f = self._live.get(p)
        if f is None:
            f = self._live[p] = _File()
        return _Handle(p, f)

    def open_write(self, path) -> _Handle:
        p = os.fspath(path)
        f = _File()
        self._live[p] = f
        return _Handle(p, f)

    def write(self, handle: _Handle, data: bytes) -> int:
        phase = self._tick("write")
        if phase == "before":
            self._crash_now("crash before write")
        if phase == "mid":
            # The unlucky case: the kernel flushed the half-written page on
            # its own before power loss — a torn record reaches the platter.
            handle.file.live.extend(bytes(data[: max(1, len(data) // 2)]))
            handle.file.durable = bytes(handle.file.live)
            self._crash_now("crash mid-write (torn)")
        handle.file.live.extend(data)
        if phase == "after":
            self._crash_now("crash after write")
        return len(data)

    def flush(self, handle: _Handle) -> None:
        pass  # live bytes already model the page cache

    def fsync(self, handle: _Handle) -> None:
        phase = self._tick("fsync")
        if phase == "before":
            self._crash_now("crash before fsync")
        if not self.drop_fsyncs:
            handle.file.durable = bytes(handle.file.live)
        if phase == "after":
            self._crash_now("crash after fsync")

    def truncate(self, handle: _Handle, size: int) -> None:
        phase = self._tick("truncate")
        if phase == "before":
            self._crash_now("crash before truncate")
        del handle.file.live[size:]
        if phase == "after":
            self._crash_now("crash after truncate")

    def close(self, handle: _Handle) -> None:
        handle.closed = True

    # -- namespace -------------------------------------------------------------

    def replace(self, src, dst) -> None:
        phase = self._tick("replace")
        if phase == "before":
            self._crash_now("crash before rename")
        s, d = os.fspath(src), os.fspath(dst)
        if s not in self._live:
            raise FileNotFoundError(s)
        self._live[d] = self._live.pop(s)
        # The rename is volatile until the parent directory is fsynced.
        if phase == "after":
            self._crash_now("crash after rename (before dir fsync)")

    def fsync_dir(self, path) -> None:
        phase = self._tick("fsync_dir")
        if phase == "before":
            self._crash_now("crash before dir fsync")
        if not self.drop_fsyncs:
            parent = os.fspath(path)
            kept = {
                p: f
                for p, f in self._durable.items()
                if os.path.dirname(p) != parent
            }
            for p, f in self._live.items():
                if os.path.dirname(p) == parent:
                    kept[p] = f
            self._durable = kept
        if phase == "after":
            self._crash_now("crash after dir fsync")

    def makedirs(self, path) -> None:
        self._dirs.add(os.fspath(path))

    def remove(self, path) -> None:
        p = os.fspath(path)
        if p not in self._live:
            raise FileNotFoundError(p)
        del self._live[p]

    # -- reads -----------------------------------------------------------------

    def exists(self, path) -> bool:
        p = os.fspath(path)
        return p in self._live or p in self._dirs

    def read_bytes(self, path) -> bytes:
        p = os.fspath(path)
        if p not in self._live:
            raise FileNotFoundError(p)
        return bytes(self._live[p].live)

    def file_size(self, path) -> int:
        p = os.fspath(path)
        if p not in self._live:
            raise FileNotFoundError(p)
        return len(self._live[p].live)

    def listdir(self, path) -> List[str]:
        parent = os.fspath(path)
        return sorted(
            os.path.basename(p)
            for p in self._live
            if os.path.dirname(p) == parent
        )

    # -- inspection helpers ----------------------------------------------------

    def durable_names(self) -> List[str]:
        return sorted(self._durable)

    def live_names(self) -> List[str]:
        return sorted(self._live)
