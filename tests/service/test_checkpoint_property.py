"""Checkpoint/restore property: every prefix restores step-identically.

The contract under test (ISSUE 2 acceptance): serializing the full tuner
state after *any* prefix of a workload — including after DBA votes — and
restoring onto a fresh optimizer yields recommendations, work-function
values, and totWork identical to the uninterrupted run. Every checkpoint
document makes a real ``json`` round trip, so the test also pins the
JSON-serializability of the whole state (Python floats round-trip exactly).
"""

from __future__ import annotations

import json

import pytest

from repro.core.wfit import WFIT
from repro.db import Index, StatsTransitionCosts, build_catalog
from repro.optimizer import WhatIfOptimizer
from repro.service import TuningEngine
from repro.workload import generate_workload, scaled_phases

SALES = "shop.sales"

#: Acceptance tolerance for totWork equality (the runs are in fact exact).
TOL = 1e-6


def _toy_statements(stats):
    """A small mixed workload: two hot range columns plus updates."""
    from repro.query.parser import parse_statement

    amount = stats.column_stats(SALES, "amount")
    sale_date = stats.column_stats(SALES, "sale_date")
    sqls = []
    for i in range(4):
        lo = amount.min_value + amount.domain_width * 0.01 * i
        hi = lo + amount.domain_width * 0.03
        sqls.append(
            f"SELECT count(*) FROM {SALES} WHERE amount BETWEEN {lo} AND {hi}"
        )
    for i in range(3):
        lo = sale_date.min_value + sale_date.domain_width * 0.02 * i
        hi = lo + sale_date.domain_width * 0.04
        sqls.append(
            f"SELECT count(*) FROM {SALES} WHERE sale_date BETWEEN {lo} AND {hi}"
        )
    sqls.append(f"UPDATE {SALES} SET amount = amount WHERE amount <= {amount.min_value + amount.domain_width * 0.01}")
    sqls.append(
        f"SELECT count(*) FROM {SALES} WHERE amount BETWEEN {amount.min_value} AND {amount.min_value + amount.domain_width * 0.05}"
    )
    return [parse_statement(sql) for sql in sqls]


def _fresh_engine(stats, **options) -> TuningEngine:
    return TuningEngine(
        WhatIfOptimizer(stats), StatsTransitionCosts(stats), **options
    )


def _drive(engine: TuningEngine, statements, vote_at, votes, start=0):
    """Feed statements one at a time; apply ``votes`` after statement
    ``vote_at`` (1-based count of processed statements). Returns the
    recommendation after each statement."""
    recs = []
    for offset, statement in enumerate(statements, start=start + 1):
        engine.submit("client", statement)
        engine.pump()
        if offset == vote_at:
            engine.vote("client", *votes)
        recs.append(engine.tuner.recommend())
    return recs


def _work_functions(engine: TuningEngine):
    return [
        (instance.indices, instance.work_function())
        for instance in engine.tuner._instances
    ]


class TestPrefixCheckpointProperty:
    OPTIONS = dict(idx_cnt=6, state_cnt=32, hist_size=10)
    VOTE_AT = 5  # after the 5th statement — prefixes beyond this cover
    #             checkpoint-after-feedback as well

    @pytest.fixture(scope="class")
    def setting(self, toy_stats):
        statements = _toy_statements(toy_stats)
        votes = (
            frozenset({Index(SALES, ("amount",))}),
            frozenset({Index(SALES, ("product_id",))}),
        )
        baseline = _fresh_engine(toy_stats, **self.OPTIONS)
        baseline_recs = _drive(baseline, statements, self.VOTE_AT, votes)
        return {
            "statements": statements,
            "votes": votes,
            "baseline": baseline,
            "baseline_recs": baseline_recs,
        }

    def test_every_prefix_restores_step_identically(self, toy_stats, setting):
        statements = setting["statements"]
        votes = setting["votes"]
        baseline = setting["baseline"]
        baseline_recs = setting["baseline_recs"]
        baseline_work = _work_functions(baseline)

        for k in range(len(statements) + 1):
            engine = _fresh_engine(toy_stats, **self.OPTIONS)
            _drive(engine, statements[:k], self.VOTE_AT, votes)
            document = json.loads(json.dumps(engine.checkpoint()))

            restored = TuningEngine.restore(
                document,
                WhatIfOptimizer(toy_stats),
                StatsTransitionCosts(toy_stats),
            )
            tail_recs = _drive(
                restored,
                statements[k:],
                self.VOTE_AT if self.VOTE_AT > k else -1,
                votes,
                start=k,
            )
            assert tail_recs == baseline_recs[k:], f"prefix {k}: recommendations diverged"
            assert restored.total_work == pytest.approx(
                baseline.total_work, abs=TOL
            ), f"prefix {k}: totWork diverged"
            restored_work = _work_functions(restored)
            assert [indices for indices, _ in restored_work] == [
                indices for indices, _ in baseline_work
            ], f"prefix {k}: partition diverged"
            for (_, ours), (_, theirs) in zip(restored_work, baseline_work):
                assert set(ours) == set(theirs)
                for config, value in theirs.items():
                    assert ours[config] == pytest.approx(value, abs=TOL), (
                        f"prefix {k}: work function diverged at {config}"
                    )

    def test_checkpoint_preserves_sessions_and_accounting(self, toy_stats, setting):
        statements = setting["statements"]
        engine = _fresh_engine(toy_stats, **self.OPTIONS)
        session = engine.session("alice")
        for statement in statements[:4]:
            session.execute(statement)
        session.recommendation()
        document = json.loads(json.dumps(engine.checkpoint()))
        restored = TuningEngine.restore(
            document,
            WhatIfOptimizer(toy_stats),
            StatsTransitionCosts(toy_stats),
        )
        assert restored.session_ids == ("alice",)
        restored_session = restored.session("alice")
        assert restored_session.statements_processed == 4
        assert [e.kind for e in restored_session.history()] == (
            [e.kind for e in session.history()]
        )
        assert restored.total_work == engine.total_work
        assert restored.materialized == engine.materialized

    def test_version_guard(self, toy_stats):
        engine = _fresh_engine(toy_stats, **self.OPTIONS)
        document = engine.checkpoint()
        document["version"] = 999
        with pytest.raises(ValueError, match="version"):
            TuningEngine.restore(
                document,
                WhatIfOptimizer(toy_stats),
                StatsTransitionCosts(toy_stats),
            )
        wfit_state = engine.tuner.export_state()
        wfit_state["version"] = 999
        with pytest.raises(ValueError, match="version"):
            WFIT.restore_state(
                WhatIfOptimizer(toy_stats),
                StatsTransitionCosts(toy_stats),
                wfit_state,
            )


class TestFigure8StepIdentical:
    """The ISSUE acceptance check on the paper's benchmark workload."""

    OPTIONS = dict(idx_cnt=10, state_cnt=64)

    def test_midpoint_checkpoint_is_step_identical(self):
        catalog, stats = build_catalog(scale=0.02)
        workload = generate_workload(catalog, stats, scaled_phases(4), seed=7)
        statements = list(workload.statements)
        midpoint = len(statements) // 2

        baseline = _fresh_engine(stats, **self.OPTIONS)
        baseline_recs = _drive(baseline, statements, -1, None)

        engine = _fresh_engine(stats, **self.OPTIONS)
        _drive(engine, statements[:midpoint], -1, None)
        document = json.loads(json.dumps(engine.checkpoint()))
        restored = TuningEngine.restore(
            document, WhatIfOptimizer(stats), StatsTransitionCosts(stats)
        )
        tail_recs = _drive(
            restored, statements[midpoint:], -1, None, start=midpoint
        )
        assert tail_recs == baseline_recs[midpoint:]
        assert restored.total_work == pytest.approx(
            baseline.total_work, abs=TOL * max(1.0, baseline.total_work)
        )
