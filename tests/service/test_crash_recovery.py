"""Crash/fault-injection harness: kill, recover, and demand step-identity.

The contract (ISSUE 9 acceptance): crash the durable engine at any
barrier — before an fsync, mid-record, after the snapshot rename but
before the WAL truncation, mid-checkpoint-rename — then recover, finish
the workload, and the recommendations, totWork, work functions, and
materialized set must be identical to the uninterrupted run. With
``fsync_interval_ms == 0`` every acknowledged operation is durable
before control returns, so the recovered engine must sit at *exactly*
the acknowledged prefix of the event sequence: nothing acknowledged is
ever lost, nothing unacknowledged is half-applied.

All filesystem state lives in a :class:`faults.FaultyIO`; a crash
reverts it to exactly what fsyncs pinned, which is what a real power
loss could leave behind.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from faults import FaultyIO, SimulatedCrash
from test_checkpoint_property import SALES, TOL, _toy_statements
from repro.db import Index, StatsTransitionCosts
from repro.ioutil import atomic_write_json
from repro.optimizer import WhatIfOptimizer
from repro.service import TuningEngine
from repro.service.snapshot import SNAPSHOT_VERSION, BrokenChain
from repro.service.wal import Durability, read_wal

OPTIONS = dict(idx_cnt=6, state_cnt=32, hist_size=10)
DIR = "/dur"


def _fresh_engine(stats) -> TuningEngine:
    return TuningEngine(
        WhatIfOptimizer(stats), StatsTransitionCosts(stats), **OPTIONS
    )


def _events(stats):
    """The toy workload as an explicit event sequence: statements plus a
    DBA vote and an explicit materialization, so WAL replay covers every
    record kind at a pinned statement position."""
    statements = _toy_statements(stats)
    votes = (
        frozenset({Index(SALES, ("amount",))}),
        frozenset({Index(SALES, ("product_id",))}),
    )
    events = []
    for i, statement in enumerate(statements, start=1):
        events.append(("stmt", statement))
        if i == 3:
            events.append(("vote", votes[0], votes[1]))
        if i == 6:
            events.append(("create", Index(SALES, ("sale_date",))))
    return events


def _apply_event(engine: TuningEngine, event) -> None:
    kind = event[0]
    if kind == "stmt":
        engine.submit("client", event[1])
        engine.pump()
    elif kind == "vote":
        engine.vote("client", event[1], event[2])
    elif kind == "create":
        engine.create_index("client", event[1])
    else:  # pragma: no cover - defensive
        raise AssertionError(f"unknown event {kind!r}")


def _signature(engine: TuningEngine):
    """Everything that must survive a crash, exactly."""
    return {
        "statements": engine.statements_processed,
        "total_work": engine.total_work,
        "recommendation": engine.tuner.recommend(),
        "materialized": engine.materialized,
        "work": [
            (instance.indices, instance.work_function())
            for instance in engine.tuner._instances
        ],
    }


def _assert_signatures_equal(ours, theirs, label):
    assert ours["statements"] == theirs["statements"], label
    assert ours["recommendation"] == theirs["recommendation"], label
    assert ours["materialized"] == theirs["materialized"], label
    assert ours["total_work"] == pytest.approx(
        theirs["total_work"], abs=TOL
    ), label
    assert [i for i, _ in ours["work"]] == [i for i, _ in theirs["work"]], label
    for (_, mine), (_, other) in zip(ours["work"], theirs["work"]):
        assert set(mine) == set(other), label
        for config, value in other.items():
            assert mine[config] == pytest.approx(value, abs=TOL), (
                f"{label}: work function diverged at {config}"
            )


@pytest.fixture(scope="module")
def reference(toy_stats):
    """The uninterrupted run: state signature after every event prefix."""
    events = _events(toy_stats)
    engine = _fresh_engine(toy_stats)
    signatures = [_signature(engine)]
    for event in events:
        _apply_event(engine, event)
        signatures.append(_signature(engine))
    return {"events": events, "signatures": signatures}


def _durable_run(stats, events, io, *, checkpoint_every=3, full_every=2):
    """Drive ``events`` against a WAL-attached engine, checkpointing every
    ``checkpoint_every`` statements. Returns the number of events that
    were *acknowledged* (their engine call returned) before the scheduled
    crash fired — or ``len(events)`` when no fault triggered."""
    engine = _fresh_engine(stats)
    durability = Durability(
        DIR, io=io, fsync_interval_ms=0, full_every=full_every
    )
    acked = 0
    try:
        durability.attach(engine)
        statements = 0
        for event in events:
            _apply_event(engine, event)
            acked += 1
            if event[0] == "stmt":
                statements += 1
                if statements % checkpoint_every == 0:
                    durability.checkpoint()
        durability.close()
    except SimulatedCrash:
        pass
    return acked


def _recover(stats, io):
    return TuningEngine.recover(
        DIR,
        WhatIfOptimizer(stats),
        StatsTransitionCosts(stats),
        io=io,
        engine_options=OPTIONS,
    )


def _recover_and_verify(stats, reference, io, acked, *, expect_extra=0):
    """Recover, check the engine sits at the acknowledged prefix (plus any
    known-durable-but-unacknowledged suffix), finish the workload, and
    demand the final state match the uninterrupted run exactly."""
    events = reference["events"]
    engine, report = _recover(stats, io)
    engine.pump()
    prefix = acked + expect_extra
    _assert_signatures_equal(
        _signature(engine),
        reference["signatures"][prefix],
        f"recovered state != reference prefix {prefix}",
    )
    for index, event in enumerate(events[prefix:], start=prefix):
        _apply_event(engine, event)
        _assert_signatures_equal(
            _signature(engine),
            reference["signatures"][index + 1],
            f"post-recovery event {index} diverged",
        )
    return engine, report


# ---------------------------------------------------------------------------
# Named barriers
# ---------------------------------------------------------------------------

class TestKillAtBarriers:
    def test_clean_run_is_step_identical(self, toy_stats, reference):
        io = FaultyIO()
        acked = _durable_run(toy_stats, reference["events"], io)
        assert acked == len(reference["events"])
        io.crash()  # even a clean shutdown must recover from durable state
        engine, report = _recover_and_verify(
            toy_stats, reference, io, acked
        )
        assert report["wal_torn_tail"] is False

    def test_crash_before_wal_fsync_loses_only_unacknowledged(
        self, toy_stats, reference
    ):
        io = FaultyIO()
        io.schedule_crash(op="fsync", at=6, phase="before")
        acked = _durable_run(toy_stats, reference["events"], io)
        assert acked < len(reference["events"])
        _recover_and_verify(toy_stats, reference, io, acked)

    def test_crash_mid_record_leaves_tolerated_torn_tail(
        self, toy_stats, reference
    ):
        io = FaultyIO()
        # Writes 1-3 are the first three statements' records, write 4 the
        # snapshot temp file, write 5 the rotation temp file; write 6 is
        # the vote's WAL record — tear that one.
        io.schedule_crash(op="write", at=6, phase="mid")
        acked = _durable_run(toy_stats, reference["events"], io)
        assert acked < len(reference["events"])
        engine, report = _recover_and_verify(toy_stats, reference, io, acked)
        assert report["wal_torn_tail"] is True

    def test_crash_after_fsync_before_ack_preserves_the_record(
        self, toy_stats, reference
    ):
        """The dual invariant: a record that *did* reach the platter is
        replayed even though the caller never saw the call return."""
        io = FaultyIO()
        io.schedule_crash(op="fsync", at=4, phase="after")
        acked = _durable_run(toy_stats, reference["events"], io)
        assert acked < len(reference["events"])
        _recover_and_verify(
            toy_stats, reference, io, acked, expect_extra=1
        )

    def test_crash_between_snapshot_publish_and_wal_truncate(
        self, toy_stats, reference
    ):
        """The snapshot is durable but the WAL still holds every record it
        covers: replay must skip them (sequence-number idempotence), not
        double-apply."""
        io = FaultyIO()
        # Checkpoint op order: snapshot write/fsync/replace/fsync_dir, then
        # the WAL rotation's own write/fsync/replace/fsync_dir. Replace #1
        # publishes the snapshot; replace #2 swaps in the rotated WAL.
        # Crash before replace #2 = snapshot durable, old WAL intact.
        io.schedule_crash(op="replace", at=2, phase="before")
        acked = _durable_run(toy_stats, reference["events"], io)
        assert acked < len(reference["events"])
        wal_records = len(read_wal(f"{DIR}/wal.log", io=io).records)
        assert wal_records > 0
        engine, report = _recover_and_verify(toy_stats, reference, io, acked)
        assert report["snapshot_id"] == 1
        assert report["wal_covered"] == wal_records
        assert report["wal_replayed"] == 0

    def test_crash_mid_checkpoint_rename(self, toy_stats, reference):
        """Power loss between the snapshot rename and the directory fsync:
        the new snapshot never happened; recovery replays the full WAL."""
        io = FaultyIO()
        io.schedule_crash(op="replace", at=1, phase="after")
        acked = _durable_run(toy_stats, reference["events"], io)
        assert acked < len(reference["events"])
        engine, report = _recover_and_verify(toy_stats, reference, io, acked)
        assert report["snapshot_id"] is None  # no snapshot survived
        assert report["wal_replayed"] > 0

    def test_crash_before_checkpoint_tmp_write(self, toy_stats, reference):
        io = FaultyIO()
        # The 7th write is inside the first checkpoint's tmp-file publish
        # (each of the first 3 statements and the vote writes one WAL
        # record = writes 1-4... schedule relative to checkpoint instead).
        io.schedule_crash(op="replace", at=1, phase="before")
        acked = _durable_run(toy_stats, reference["events"], io)
        assert acked < len(reference["events"])
        _recover_and_verify(toy_stats, reference, io, acked)

    def test_duplicate_replay_is_idempotent_across_double_crash(
        self, toy_stats, reference
    ):
        """Crash during WAL rotation, recover, crash again without any
        new checkpoint: covered records must be skipped both times."""
        io = FaultyIO()
        io.schedule_crash(op="replace", at=2, phase="before")
        acked = _durable_run(toy_stats, reference["events"], io)
        engine, first_report = _recover(toy_stats, io)
        assert first_report["wal_covered"] > 0
        io.crash()  # recovery itself wrote nothing, so this is a no-op
        _recover_and_verify(toy_stats, reference, io, acked)

    def test_recovery_leaves_queue_unpumped(self, toy_stats, reference):
        """Recovery restores state; it does not advance it."""
        io = FaultyIO()
        io.schedule_crash(op="fsync", at=9, phase="before")
        _durable_run(toy_stats, reference["events"], io)
        engine, report = _recover(toy_stats, io)
        assert report["queue_depth"] == engine.queue_depth
        if report["wal_replayed"] > 0:
            assert engine.queue_depth > 0


# ---------------------------------------------------------------------------
# Rotation races, poisoned records, chain gaps
# ---------------------------------------------------------------------------

class TestRotationAndChainSafety:
    def test_submit_racing_checkpoint_survives_rotation(
        self, toy_stats, reference
    ):
        """A submit acknowledged between the checkpoint's mark capture and
        the WAL rotation sits past the marked prefix; the rotation must
        carry its record into the fresh log, not destroy it."""
        io = FaultyIO()
        events = reference["events"]
        engine = _fresh_engine(toy_stats)
        durability = Durability(DIR, io=io, fsync_interval_ms=0)
        durability.attach(engine)
        for event in events[:2]:
            _apply_event(engine, event)
        racer = events[2][1]
        original = engine.checkpoint

        def checkpoint_then_race(*args, **kwargs):
            document = original(*args, **kwargs)
            # The mark was captured inside the call above; this submit is
            # acknowledged (written and fsynced) before the snapshot
            # publish and WAL rotation run.
            engine.submit("client", racer)
            return document

        engine.checkpoint = checkpoint_then_race
        durability.checkpoint()
        io.crash()
        recovered, report = _recover(toy_stats, io)
        assert report["wal_replayed"] == 1
        recovered.pump()
        _assert_signatures_equal(
            _signature(recovered),
            reference["signatures"][3],
            "submit acknowledged during checkpoint was lost by rotation",
        )

    def test_crash_mid_wal_rotation_rename(self, toy_stats, reference):
        """Power loss after the rotated log's rename but before the
        directory fsync: the old full log is the durable one, and its
        covered records replay as no-ops against the published snapshot."""
        io = FaultyIO()
        io.schedule_crash(op="replace", at=2, phase="after")
        acked = _durable_run(toy_stats, reference["events"], io)
        assert acked < len(reference["events"])
        engine, report = _recover_and_verify(toy_stats, reference, io, acked)
        assert report["snapshot_id"] == 1
        assert report["wal_covered"] > 0
        assert report["wal_replayed"] == 0

    def test_invalid_vote_is_rejected_before_it_is_logged(
        self, toy_stats, reference
    ):
        """An overlapping F+/F- vote must fail *before* its WAL record is
        written: a durable record that :meth:`WFIT.feedback` rejects would
        permanently poison every future recovery replay."""
        io = FaultyIO()
        engine = _fresh_engine(toy_stats)
        durability = Durability(DIR, io=io, fsync_interval_ms=0)
        durability.attach(engine)
        for event in reference["events"][:3]:
            _apply_event(engine, event)
        overlap = frozenset({Index(SALES, ("amount",))})
        with pytest.raises(ValueError):
            engine.vote("client", overlap, overlap)
        durability.close()
        kinds = [r.kind for r in read_wal(f"{DIR}/wal.log", io=io).records]
        assert "vote" not in kinds
        io.crash()
        recovered, report = _recover(toy_stats, io)
        assert report["wal_replayed"] == 3
        recovered.pump()
        _assert_signatures_equal(
            _signature(recovered),
            reference["signatures"][3],
            "rejected vote poisoned recovery",
        )

    def test_fallback_past_newer_checkpoint_refuses(
        self, toy_stats, reference
    ):
        """When the newest snapshot is unreadable, falling back to an
        older one cannot silently succeed: the WAL was rotated at the
        newest checkpoint, so the mutations between the two snapshots are
        gone. The rotated log's floor record is the witness."""
        io = FaultyIO()
        acked = _durable_run(toy_stats, reference["events"], io)
        assert acked == len(reference["events"])
        io.crash()
        newest = max(
            name for name in io.listdir(DIR) if name.startswith("snapshot-")
        )
        io.flip_byte(f"{DIR}/{newest}", 0)
        with pytest.raises(BrokenChain, match="refusing recovery"):
            _recover(toy_stats, io)

    def test_skipped_snapshot_wal_seq_is_a_gap_witness(
        self, toy_stats, reference
    ):
        """Even with no floor record to testify (the WAL vanished), a
        newer-but-unrestorable snapshot's own wal_seq proves acknowledged
        history reached past everything recoverable."""
        io = FaultyIO()
        engine = _fresh_engine(toy_stats)
        durability = Durability(DIR, io=io, fsync_interval_ms=0)
        durability.attach(engine)
        for event in reference["events"][:3]:
            _apply_event(engine, event)
        durability.checkpoint()
        durability.close()
        # A later checkpoint whose base is gone: parseable, unrestorable.
        atomic_write_json(
            f"{DIR}/snapshot-000002.json",
            {
                "version": SNAPSHOT_VERSION,
                "kind": "delta",
                "snapshot_id": 2,
                "base_id": 999,
                "wal_seq": 50,
            },
            io=io,
        )
        io.remove(f"{DIR}/wal.log")
        with pytest.raises(BrokenChain, match="skipped"):
            _recover(toy_stats, io)


# ---------------------------------------------------------------------------
# Random kill points (hypothesis)
# ---------------------------------------------------------------------------

class TestRandomKillPoints:
    @settings(max_examples=20, deadline=None)
    @given(
        kill_op=st.integers(min_value=1, max_value=60),
        phase=st.sampled_from(["before", "mid"]),
        checkpoint_every=st.sampled_from([2, 3, 5]),
    )
    def test_recovery_is_step_identical_for_any_kill_point(
        self, toy_stats, reference, kill_op, phase, checkpoint_every
    ):
        """Crash at the N-th mutating IO op (or mid-way through the N-th
        write), recover, finish the workload: always step-identical."""
        io = FaultyIO()
        if phase == "mid":
            io.schedule_crash(op="write", at=kill_op, phase="mid")
        else:
            io.schedule_crash(op="*", at=kill_op, phase="before")
        acked = _durable_run(
            toy_stats,
            reference["events"],
            io,
            checkpoint_every=checkpoint_every,
        )
        if io.crashes == 0:
            # Kill point beyond the run's op count: a clean run. Still
            # recover from durable state to close the loop.
            io.crash()
        _recover_and_verify(toy_stats, reference, io, acked)
