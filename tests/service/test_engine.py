"""Tests for the multi-session tuning engine (ingest, routing, metrics)."""

from __future__ import annotations

import pytest

from repro.db import Index, StatsTransitionCosts
from repro.optimizer import WhatIfOptimizer
from repro.service import TuningEngine

SALES = "shop.sales"


def narrow_sql(stats, column="amount", fraction=0.02, offset=0.0):
    col = stats.column_stats(SALES, column)
    lo = col.min_value + col.domain_width * offset
    hi = lo + col.domain_width * fraction
    return f"SELECT count(*) FROM shop.sales WHERE {column} BETWEEN {lo} AND {hi}"


@pytest.fixture()
def engine(toy_stats) -> TuningEngine:
    return TuningEngine(
        WhatIfOptimizer(toy_stats),
        StatsTransitionCosts(toy_stats),
        batch_size=4,
        idx_cnt=8,
        state_cnt=64,
    )


class TestIngest:
    def test_submit_is_deferred_until_pump(self, engine, toy_stats):
        engine.submit("a", narrow_sql(toy_stats))
        assert engine.queue_depth == 1
        assert engine.statements_processed == 0
        assert engine.pump() == 1
        assert engine.queue_depth == 0
        assert engine.statements_processed == 1

    def test_pump_limit_and_order(self, engine, toy_stats):
        for i in range(6):
            engine.submit("a" if i % 2 == 0 else "b", narrow_sql(toy_stats))
        assert engine.pump(4) == 4
        assert engine.queue_depth == 2
        assert engine.pump() == 2
        a, b = engine.session("a"), engine.session("b")
        assert a.statements_processed == 3
        assert b.statements_processed == 3

    def test_micro_batches_accounted(self, engine, toy_stats):
        for _ in range(10):
            engine.submit("a", narrow_sql(toy_stats))
        engine.pump()
        # batch_size=4 → batches of 4, 4, 2.
        assert engine.batches_processed == 3

    def test_parse_on_submit(self, engine, toy_stats):
        parsed = engine.submit("a", narrow_sql(toy_stats))
        assert parsed.tables_referenced() == (SALES,)

    def test_background_drain(self, engine, toy_stats):
        engine.start()
        try:
            session = engine.session("a")
            for _ in range(8):
                session.submit(narrow_sql(toy_stats))
        finally:
            engine.stop(drain=True)
        assert engine.statements_processed == 8
        assert not engine.running

    def test_start_twice_rejected(self, engine):
        engine.start()
        try:
            with pytest.raises(RuntimeError):
                engine.start()
        finally:
            engine.stop()


class TestSessionRouting:
    def test_audit_logs_are_per_client(self, engine, toy_stats):
        a, b = engine.session("a"), engine.session("b")
        a.execute(narrow_sql(toy_stats))
        b.execute(narrow_sql(toy_stats, "sale_date"))
        a.vote_up(Index(SALES, ("amount",)))
        assert [e.kind for e in a.history()] == ["statement", "vote"]
        assert [e.kind for e in b.history()] == ["statement"]

    def test_shared_recommendation(self, engine, toy_stats):
        a, b = engine.session("a"), engine.session("b")
        for _ in range(30):
            a.submit(narrow_sql(toy_stats))
        engine.pump()
        assert a.recommendation().recommended == b.recommendation().recommended

    def test_materialization_is_shared_and_validated(self, engine, toy_stats):
        a, b = engine.session("a"), engine.session("b")
        index = Index(SALES, ("amount",))
        a.create_index(index)
        assert index in b.materialized
        with pytest.raises(ValueError):
            b.create_index(index)
        b.drop_index(index)
        with pytest.raises(ValueError):
            a.drop_index(index)
        kinds = [e.kind for e in a.history()]
        assert kinds == ["create"]
        assert [e.kind for e in b.history()] == ["drop"]

    def test_votes_route_to_shared_core(self, engine, toy_stats):
        a, b = engine.session("a"), engine.session("b")
        a.execute(narrow_sql(toy_stats))
        index = Index(SALES, ("amount",))
        assert index in a.vote_up(index)
        assert index in engine.tuner.recommend()
        assert index not in b.vote_down(index)


class TestObservability:
    def test_metrics_shape(self, engine, toy_stats):
        engine.session("a").execute_many([narrow_sql(toy_stats)] * 3)
        metrics = engine.metrics()
        assert metrics["statements_processed"] == 3
        assert metrics["queue_depth"] == 0
        assert metrics["sessions"]["a"]["processed"] == 3
        assert metrics["cache"]["whatif_calls"] > 0
        assert 0.0 <= metrics["cache"]["statement_hit_rate"] <= 1.0

    def test_total_work_accumulates(self, engine, toy_stats):
        engine.session("a").execute_many([narrow_sql(toy_stats)] * 5)
        assert engine.total_work > 0.0

    def test_cache_stats_counters(self, toy_stats):
        optimizer = WhatIfOptimizer(toy_stats)
        engine = TuningEngine(
            optimizer, StatsTransitionCosts(toy_stats),
            idx_cnt=8, state_cnt=64,
        )
        session = engine.session("a")
        statement = session.execute(narrow_sql(toy_stats))
        before = optimizer.cache_stats()
        session.execute(statement)  # identical statement: pure cache traffic
        after = optimizer.cache_stats()
        assert after["optimizations"] == before["optimizations"]
        assert after["template_builds"] == before["template_builds"]
        gained_hits = after["statement_hits"] - before["statement_hits"]
        assert gained_hits > 0
        assert after["statement_hit_rate"] >= 0.0

    def test_reset_counters_clears_cache_stats(self, toy_optimizer):
        toy_optimizer._stmt_hits = 5
        toy_optimizer.reset_counters()
        stats = toy_optimizer.cache_stats()
        assert stats["statement_hits"] == 0
        assert stats["statement_hit_rate"] == 0.0

    def test_cache_stats_reset_gives_windowed_counts(self, toy_stats):
        optimizer = WhatIfOptimizer(toy_stats)
        engine = TuningEngine(
            optimizer, StatsTransitionCosts(toy_stats),
            idx_cnt=8, state_cnt=64,
        )
        session = engine.session("a")
        statement = session.execute(narrow_sql(toy_stats))
        window_one = optimizer.cache_stats(reset=True)
        assert window_one["whatif_calls"] > 0
        # The reset zeroed the counters: replaying the identical statement
        # yields a second window counting only its own traffic.
        session.execute(statement)
        window_two = optimizer.cache_stats(reset=True)
        assert window_two["optimizations"] == 0
        assert 0 < window_two["whatif_calls"] < window_one["whatif_calls"]
        assert optimizer.cache_stats()["whatif_calls"] == 0

    def test_uptime_and_queue_depth_in_metrics(self, engine, toy_stats):
        engine.session("a").execute(narrow_sql(toy_stats))
        metrics = engine.metrics()
        assert metrics["uptime_s"] >= 0.0
        assert metrics["queue_depth"] == 0
        engine.submit("a", narrow_sql(toy_stats, offset=0.1))
        assert engine.metrics()["queue_depth"] == 1


class TestPercentile:
    """Nearest-rank percentile edge cases (the old formula read one rank
    too high: p50 of two samples returned the larger one)."""

    def test_empty_returns_zero(self):
        from repro.service.engine import _percentile
        assert _percentile([], 0.50) == 0.0

    def test_single_sample_is_every_percentile(self):
        from repro.service.engine import _percentile
        assert _percentile([7.0], 0.50) == 7.0
        assert _percentile([7.0], 0.95) == 7.0

    def test_p50_of_two_is_the_lower(self):
        from repro.service.engine import _percentile
        assert _percentile([1.0, 9.0], 0.50) == 1.0
        assert _percentile([1.0, 9.0], 0.95) == 9.0

    def test_nearest_rank_on_larger_windows(self):
        from repro.service.engine import _percentile
        samples = [float(i) for i in range(1, 101)]  # 1..100
        assert _percentile(samples, 0.50) == 50.0
        assert _percentile(samples, 0.95) == 95.0
        assert _percentile(samples, 1.0) == 100.0
        assert _percentile(samples, 0.0) == 1.0


class TestCheckpointWithPendingSubmissions:
    def test_pending_submissions_are_serialized_and_stay_queued(
        self, engine, toy_stats
    ):
        engine.session("a").execute(narrow_sql(toy_stats))
        engine.submit("a", narrow_sql(toy_stats, offset=0.1))
        engine.submit("b", narrow_sql(toy_stats, offset=0.2))
        # Snapshot without draining: the backlog is serialized into the
        # document (in submission order) *and* kept queued in the live
        # engine — a crash after this point loses nothing.
        document = engine.checkpoint(drain=False)
        assert engine.queue_depth == 2
        assert [item["client_id"] for item in document["pending"]] == ["a", "b"]
        session_a = next(
            s for s in document["sessions"] if s["client_id"] == "a"
        )
        assert session_a["submitted"] == session_a["processed"] == 1
        assert document["accounting"]["statements_processed"] == 1
        assert engine.pump() == 2  # the live engine still owns the backlog

    def test_checkpoint_drains_pending_first(self, engine, toy_stats):
        engine.submit("a", narrow_sql(toy_stats))
        document = engine.checkpoint()
        assert engine.queue_depth == 0
        assert document["accounting"]["statements_processed"] == 1
        assert document["pending"] == []

    def test_restore_replays_pending_statements(self, engine, toy_stats):
        """The ROADMAP gap: submitted-but-unpumped statements used to be
        silently dropped from checkpoints. They must replay on restore."""
        shadow = TuningEngine(
            WhatIfOptimizer(toy_stats),
            StatsTransitionCosts(toy_stats),
            batch_size=4,
            idx_cnt=8,
            state_cnt=64,
        )
        statements = [narrow_sql(toy_stats, offset=i * 0.05) for i in range(5)]
        for engine_ in (engine, shadow):
            for sql in statements[:2]:
                engine_.submit("a", sql)
            engine_.pump()
            for sql in statements[2:]:
                engine_.submit("a", sql)
        document = engine.checkpoint(drain=False)
        assert len(document["pending"]) == 3

        restored = TuningEngine.restore(
            document,
            WhatIfOptimizer(toy_stats),
            StatsTransitionCosts(toy_stats),
        )
        assert restored.queue_depth == 3
        assert restored.pump() == 3
        shadow.pump()
        # The restored engine caught up with an uninterrupted twin.
        assert restored.statements_processed == shadow.statements_processed == 5
        assert (
            restored.tuner.recommend() == shadow.tuner.recommend()
        )
        assert restored.total_work == pytest.approx(shadow.total_work)
        state = restored._client("a")
        assert state.submitted == state.processed == 5

    def test_version_1_documents_still_restore(self, engine, toy_stats):
        engine.session("a").execute(narrow_sql(toy_stats))
        document = engine.checkpoint()
        # A pre-pending-queue document: no "pending" key, version 1.
        document.pop("pending")
        document["version"] = 1
        restored = TuningEngine.restore(
            document,
            WhatIfOptimizer(toy_stats),
            StatsTransitionCosts(toy_stats),
        )
        assert restored.statements_processed == 1
        assert restored.queue_depth == 0
