"""Concurrency tests for the tuning engine: submit-while-draining stress,
lifecycle races, batched submission, and the bounded latency window.

The engine's concurrency contract: any number of submitter threads may run
against the background drain; afterwards every submission is processed
exactly once, each client's audit log lists its statements in its own
submission order (the queue is FIFO per client by construction), and a
checkpoint of the concurrently-driven engine restores step-identically.
``REPRO_WORKERS``/``workers`` must not change any of this — the CI
threaded-stress job re-runs this module with ``workers=4`` under both
kernel backends.
"""

from __future__ import annotations

import threading

import pytest

from repro.db import StatsTransitionCosts
from repro.optimizer import WhatIfOptimizer
from repro.service import TuningEngine

SALES = "shop.sales"


def narrow_sql(stats, column="amount", fraction=0.02, offset=0.0):
    col = stats.column_stats(SALES, column)
    lo = col.min_value + col.domain_width * offset
    hi = lo + col.domain_width * fraction
    return f"SELECT count(*) FROM shop.sales WHERE {column} BETWEEN {lo} AND {hi}"


def make_engine(toy_stats, **options) -> TuningEngine:
    options.setdefault("batch_size", 4)
    options.setdefault("idx_cnt", 8)
    options.setdefault("state_cnt", 64)
    return TuningEngine(
        WhatIfOptimizer(toy_stats), StatsTransitionCosts(toy_stats), **options
    )


class TestSubmitWhileDraining:
    N_CLIENTS = 4
    PER_CLIENT = 12

    def _client_statements(self, toy_stats, client_index):
        return [
            narrow_sql(toy_stats, offset=0.01 * (client_index * self.PER_CLIENT + i))
            for i in range(self.PER_CLIENT)
        ]

    def test_stress_counts_ordering_and_checkpoint_identity(self, toy_stats):
        engine = make_engine(toy_stats)
        per_client = {
            f"client-{i}": self._client_statements(toy_stats, i)
            for i in range(self.N_CLIENTS)
        }
        release = threading.Event()

        def submitter(client_id, statements):
            release.wait(5.0)
            for sql in statements:
                engine.submit(client_id, sql)

        threads = [
            threading.Thread(target=submitter, args=item)
            for item in per_client.items()
        ]
        engine.start(poll_interval=0.005)
        try:
            for thread in threads:
                thread.start()
            release.set()  # all submitters race the running drain at once
            for thread in threads:
                thread.join()
        finally:
            engine.stop(drain=True)

        total = self.N_CLIENTS * self.PER_CLIENT
        assert engine.statements_processed == total
        assert engine.queue_depth == 0
        for client_id, statements in per_client.items():
            state = engine._client(client_id)
            assert state.submitted == state.processed == self.PER_CLIENT
            # Per-client event ordering: the audit log's statement events
            # replay the client's own submission order exactly.
            details = [
                e.detail for e in engine.history(client_id)
                if e.kind == "statement"
            ]
            assert details == [_to_sql(sql) for sql in statements]

        # Checkpoint/restore step-identity: the concurrently-driven engine
        # and its restored twin must walk the same suffix identically.
        document = engine.checkpoint()
        restored = TuningEngine.restore(
            document, WhatIfOptimizer(toy_stats), StatsTransitionCosts(toy_stats)
        )
        assert restored.statements_processed == engine.statements_processed
        assert restored.total_work == engine.total_work
        assert restored.tuner.recommend() == engine.tuner.recommend()
        suffix = [narrow_sql(toy_stats, offset=0.8 + 0.02 * i) for i in range(6)]
        for sql in suffix:
            engine.submit("client-0", sql)
            restored.submit("client-0", sql)
            engine.pump(1)
            restored.pump(1)
            assert restored.tuner.recommend() == engine.tuner.recommend()
        assert restored.total_work == engine.total_work

    def test_submit_many_races_background_drain(self, toy_stats):
        engine = make_engine(toy_stats)
        batches = [
            [("a", narrow_sql(toy_stats, offset=0.05 * b + 0.01 * i))
             for i in range(4)]
            for b in range(4)
        ]
        engine.start(poll_interval=0.005)
        try:
            workers = [
                threading.Thread(target=engine.submit_many, args=(batch,))
                for batch in batches
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        finally:
            engine.stop(drain=True)
        assert engine.statements_processed == 16
        details = [
            e.detail for e in engine.history("a") if e.kind == "statement"
        ]
        # Batches interleave arbitrarily, but each batch's statements keep
        # their internal submission order (single lock acquisition).
        for batch in batches:
            positions = [details.index(_to_sql(sql)) for _, sql in batch]
            assert positions == sorted(positions)


def _to_sql(sql: str) -> str:
    from repro.query.parser import parse_statement, to_sql

    return to_sql(parse_statement(sql))


class TestLifecycleRaces:
    def test_concurrent_start_admits_exactly_one(self, toy_stats):
        engine = make_engine(toy_stats)
        outcomes = []
        barrier = threading.Barrier(8)

        def racer():
            barrier.wait(5.0)
            try:
                engine.start()
                outcomes.append("started")
            except RuntimeError:
                outcomes.append("rejected")

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            assert outcomes.count("started") == 1
            assert outcomes.count("rejected") == 7
            assert engine.running
        finally:
            engine.stop()
        assert not engine.running

    def test_concurrent_stop_is_safe(self, toy_stats):
        engine = make_engine(toy_stats)
        engine.start()
        barrier = threading.Barrier(4)

        def stopper():
            barrier.wait(5.0)
            engine.stop(drain=False)

        threads = [threading.Thread(target=stopper) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not engine.running

    def test_start_stop_churn(self, toy_stats):
        """start/stop cycling from two threads never wedges or leaks: the
        engine always ends stoppable and processes everything submitted."""
        engine = make_engine(toy_stats)
        stop_all = threading.Event()

        def churner():
            while not stop_all.is_set():
                try:
                    engine.start(poll_interval=0.001)
                except RuntimeError:
                    pass
                engine.stop(drain=False)

        threads = [threading.Thread(target=churner) for _ in range(2)]
        for thread in threads:
            thread.start()
        for i in range(10):
            engine.submit("a", narrow_sql(toy_stats, offset=0.02 * i))
        stop_all.set()
        for thread in threads:
            thread.join()
        engine.stop(drain=True)
        assert engine.statements_processed == 10
        assert not engine.running


class TestSubmitMany:
    def test_batch_is_one_lock_acquisition_in_order(self, toy_stats):
        engine = make_engine(toy_stats)
        entries = [
            ("a", narrow_sql(toy_stats, offset=0.1)),
            ("b", narrow_sql(toy_stats, offset=0.2)),
            ("a", narrow_sql(toy_stats, offset=0.3)),
        ]
        assert engine.submit_many(entries) == 3
        assert engine.queue_depth == 3
        assert engine._client("a").submitted == 2
        assert engine._client("b").submitted == 1
        engine.pump()
        details = [
            e.detail for e in engine.history("a") if e.kind == "statement"
        ]
        assert details == [_to_sql(entries[0][1]), _to_sql(entries[2][1])]

    def test_empty_batch(self, toy_stats):
        engine = make_engine(toy_stats)
        assert engine.submit_many([]) == 0
        assert engine.queue_depth == 0

    def test_single_notify_wakes_the_drain(self, toy_stats):
        engine = make_engine(toy_stats)
        engine.start(poll_interval=10.0)  # only the notify can wake it fast
        try:
            engine.submit_many(
                ("a", narrow_sql(toy_stats, offset=0.02 * i)) for i in range(6)
            )
            deadline = threading.Event()
            for _ in range(200):
                if engine.statements_processed == 6:
                    break
                deadline.wait(0.05)
        finally:
            engine.stop(drain=True)
        assert engine.statements_processed == 6


class TestLatencyWindow:
    def test_window_is_bounded_and_configurable(self, toy_stats):
        engine = make_engine(toy_stats, latency_window=4)
        session = engine.session("a")
        for i in range(10):
            session.execute(narrow_sql(toy_stats, offset=0.02 * i))
        state = engine._client("a")
        assert len(state.latencies) == 4  # bounded: old samples evicted
        assert state.processed == 10
        metrics = engine.metrics()
        assert metrics["sessions"]["a"]["latency_p95_ms"] >= 0.0

    def test_default_window(self, toy_stats):
        engine = make_engine(toy_stats)
        assert engine.latency_window == 4096
        assert engine._client("a").latencies.maxlen == 4096

    def test_window_validation(self, toy_stats):
        with pytest.raises(ValueError, match="latency_window"):
            make_engine(toy_stats, latency_window=0)


class TestParallelEngine:
    def test_parallel_engine_matches_serial(self, toy_stats):
        statements = [narrow_sql(toy_stats, offset=0.03 * i) for i in range(12)]
        outcomes = {}
        for workers in (1, 3):
            engine = make_engine(toy_stats, workers=workers)
            for i, sql in enumerate(statements):
                engine.submit(f"client-{i % 3}", sql)
            engine.pump()
            outcomes[workers] = (
                engine.tuner.recommend(),
                engine.total_work,
            )
            assert engine.workers == workers
            engine.close()
        assert outcomes[1] == outcomes[3]

    def test_metrics_report_workers_and_parallel(self, toy_stats):
        engine = make_engine(toy_stats, workers=2)
        engine.session("a").execute_many(
            [narrow_sql(toy_stats, offset=0.02 * i) for i in range(4)]
        )
        metrics = engine.metrics()
        assert metrics["workers"] == 2
        parallel = metrics["parallel"]
        assert parallel["workers"] == 2
        assert "last_batch_efficiency" in parallel
        if parallel["parallel_sections"]:
            assert parallel["parallel_efficiency"] > 0.0
        engine.close()

    def test_concurrent_submitters_with_worker_pool(self, toy_stats):
        """The full stack at once: N submitter threads, background drain,
        and the per-part fan-out pool — counts still exact."""
        engine = make_engine(toy_stats, workers=2)
        release = threading.Event()

        def submitter(client_id):
            release.wait(5.0)
            for i in range(8):
                engine.submit(client_id, narrow_sql(toy_stats, offset=0.02 * i))

        threads = [
            threading.Thread(target=submitter, args=(f"c{i}",)) for i in range(3)
        ]
        engine.start(poll_interval=0.005)
        try:
            for thread in threads:
                thread.start()
            release.set()
            for thread in threads:
                thread.join()
        finally:
            engine.stop(drain=True)
        assert engine.statements_processed == 24
        engine.close()
