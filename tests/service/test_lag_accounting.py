"""Lagged-DBA totWork accounting (ISSUE 10 tentpole).

The engine keeps two §3.1 series: *recommended* totWork (immediate
adoption — ``total_work``, unchanged from earlier PRs) and *realized*
totWork (costs charged under the configurations actually materialized,
transitions charged when the DBA adopts). The contracts: a lag-0 DBA
(adopt after every statement) realizes exactly the recommended series,
larger lags are monotonically no better, and the driver-level
``track_recommended`` series reproduces an autonomous run bit for bit.
"""

from __future__ import annotations

import pytest

from repro.core.driver import run_online
from repro.core.wfit import WFIT
from repro.db import StatsTransitionCosts
from repro.optimizer import WhatIfOptimizer
from repro.query.parser import parse_statement
from repro.service import TuningEngine

SALES = "shop.sales"


def narrow_sql(stats, column="amount", fraction=0.02, offset=0.0):
    col = stats.column_stats(SALES, column)
    lo = col.min_value + col.domain_width * offset
    hi = lo + col.domain_width * fraction
    return f"SELECT count(*) FROM shop.sales WHERE {column} BETWEEN {lo} AND {hi}"


def statements(stats, n=10):
    return [
        narrow_sql(
            stats,
            column="amount" if i % 2 == 0 else "customer_id",
            offset=(i % 5) * 0.12,
        )
        for i in range(n)
    ]


def fresh_engine(stats) -> TuningEngine:
    return TuningEngine(
        WhatIfOptimizer(stats),
        StatsTransitionCosts(stats),
        batch_size=1,
        idx_cnt=8,
        state_cnt=64,
    )


def lagged_run(stats, lag: int) -> TuningEngine:
    """Submit/pump one statement at a time; adopt every ``lag`` statements
    (``lease=lag > 1`` mirrors run_online's adopt_period convention)."""
    engine = fresh_engine(stats)
    for position, sql in enumerate(statements(stats)):
        engine.submit("dba", sql)
        engine.pump()
        if (position + 1) % lag == 0:
            engine.adopt("dba", lease=lag > 1)
    return engine


class TestEngineLagSeries:
    def test_lag_zero_realizes_recommended_exactly(self, toy_stats):
        engine = lagged_run(toy_stats, lag=1)
        # Bit-equality, not approx: both series accumulate per statement
        # as one `cost + transition` sum, so an immediate-adoption DBA
        # replays the recommended arithmetic exactly.
        assert engine.realized_total_work == engine.total_work
        assert engine.realized_total_work > 0

    def test_larger_lags_monotonically_no_better(self, toy_stats):
        totals = [
            lagged_run(toy_stats, lag).realized_total_work
            for lag in (1, 2, 5, 10)
        ]
        for tighter, looser in zip(totals, totals[1:]):
            assert looser >= tighter

    def test_never_adopting_realizes_initial_config_costs(self, toy_stats):
        engine = fresh_engine(toy_stats)
        for sql in statements(toy_stats):
            engine.submit("dba", sql)
            engine.pump()
        # No adoption: no transitions were paid, every cost was realized
        # under the (empty) initial materialized set.
        assert engine.materialized == frozenset()
        assert engine.realized_total_work >= engine.total_work
        metrics = engine.metrics()
        assert metrics["adoption"]["changes"] == 0
        assert metrics["adoption"]["last_position"] is None

    def test_adoption_metrics_track_lag(self, toy_stats):
        engine = lagged_run(toy_stats, lag=5)
        metrics = engine.metrics()
        adoption = metrics["adoption"]
        # last_position marks the last adoption that *changed* the
        # materialized set (a no-op adopt is not a configuration event);
        # the lag metric is the statements analyzed since then.
        assert adoption["last_position"] in (5, 10)
        assert adoption["lag_statements"] == 10 - adoption["last_position"]
        assert adoption["changes"] >= 1
        assert metrics["realized_total_work"] == engine.realized_total_work
        # Per-session shares cover query costs only — shared transition
        # costs live in the engine-level series.
        session = metrics["sessions"]["dba"]
        assert 0 < session["recommended_work"] <= engine.total_work
        assert 0 < session["realized_work"] <= engine.realized_total_work

    def test_lease_adoption_counts_wfit_feedback(self, toy_stats):
        engine = lagged_run(toy_stats, lag=5)  # lease=True path
        adoption = engine.metrics()["adoption"]
        assert adoption["feedback_count"] == 2  # one per adopt
        assert adoption["feedback_lag_statements"] == 0
        no_lease = lagged_run(toy_stats, lag=1)  # lease=False path
        assert no_lease.metrics()["adoption"]["feedback_count"] == 0


class TestDriverRecommendedSeries:
    def _wfit(self, stats) -> WFIT:
        return WFIT(
            WhatIfOptimizer(stats),
            StatsTransitionCosts(stats),
            idx_cnt=8,
            state_cnt=64,
        )

    def test_track_recommended_reproduces_autonomous_run(self, toy_stats):
        stmts = [parse_statement(sql) for sql in statements(toy_stats)]
        optimizer = WhatIfOptimizer(toy_stats)
        transitions = StatsTransitionCosts(toy_stats)
        autonomous = run_online(
            WFIT(optimizer, transitions, idx_cnt=8, state_cnt=64),
            stmts,
            optimizer.cost,
            transitions,
            optimizer=optimizer,
        )
        optimizer2 = WhatIfOptimizer(toy_stats)
        transitions2 = StatsTransitionCosts(toy_stats)
        lagged = run_online(
            WFIT(optimizer2, transitions2, idx_cnt=8, state_cnt=64),
            stmts,
            optimizer2.cost,
            transitions2,
            optimizer=optimizer2,
            adopt_period=4,
            track_recommended=True,
        )
        assert lagged.tracked_recommended
        # The lagged run's *recommended* series is the autonomous run's
        # realized series — sampled at the same point (right after
        # analyze, before feedback), accumulated with the same grouping.
        assert (
            lagged.recommended_total_work == autonomous.total_work
        )
        assert (
            lagged.recommended_total_work_series
            == autonomous.total_work_series
        )
        # And the lagged DBA can only do worse than full autonomy.
        assert lagged.adoption_lag_cost >= 0.0
        assert lagged.total_work == pytest.approx(
            lagged.recommended_total_work + lagged.adoption_lag_cost
        )

    def test_untracked_run_has_no_recommended_series(self, toy_stats):
        optimizer = WhatIfOptimizer(toy_stats)
        result = run_online(
            self._wfit(toy_stats),
            [parse_statement(sql) for sql in statements(toy_stats, n=4)],
            optimizer.cost,
            StatsTransitionCosts(toy_stats),
            optimizer=optimizer,
        )
        assert not result.tracked_recommended
        # Untracked points carry a zero recommended series.
        assert result.recommended_total_work == 0.0
        assert set(result.recommended_total_work_series) == {0.0}
