"""Multi-client trace containers and engine/single-WFIT determinism."""

from __future__ import annotations

import pytest

from repro.core.wfit import WFIT
from repro.db import StatsTransitionCosts, build_catalog
from repro.optimizer import WhatIfOptimizer
from repro.service import TuningEngine
from repro.workload import MultiClientTrace, generate_workload, scaled_phases


@pytest.fixture(scope="module")
def small_workload():
    catalog, stats = build_catalog(scale=0.02)
    workload = generate_workload(catalog, stats, scaled_phases(3), seed=5)
    return stats, list(workload.statements)


class TestTraceConstruction:
    def test_split_round_robin_preserves_order(self, small_workload):
        _, statements = small_workload
        trace = MultiClientTrace.split(statements, ["a", "b", "c"])
        assert trace.merged_statements() == tuple(statements)
        assert trace.clients == ("a", "b", "c")
        assert [client for client, _ in trace][:6] == ["a", "b", "c"] * 2

    def test_split_random_is_seeded(self, small_workload):
        _, statements = small_workload
        first = MultiClientTrace.split(statements, ["a", "b"], "random", seed=3)
        second = MultiClientTrace.split(statements, ["a", "b"], "random", seed=3)
        assert first.entries == second.entries
        assert first.merged_statements() == tuple(statements)

    def test_round_robin_merge_preserves_client_order(self, small_workload):
        _, statements = small_workload
        streams = {"a": statements[:5], "b": statements[5:8]}
        trace = MultiClientTrace.round_robin(streams)
        assert len(trace) == 8
        per_client = trace.per_client()
        assert per_client["a"] == statements[:5]
        assert per_client["b"] == statements[5:8]
        # Alternates while both streams have statements.
        assert [c for c, _ in trace][:6] == ["a", "b", "a", "b", "a", "b"]
        assert [c for c, _ in trace][6:] == ["a", "a"]

    def test_shuffled_merge_is_seeded_and_order_preserving(self, small_workload):
        _, statements = small_workload
        streams = {"a": statements[:6], "b": statements[6:12]}
        first = MultiClientTrace.shuffled(streams, seed=9)
        second = MultiClientTrace.shuffled(streams, seed=9)
        assert first.entries == second.entries
        per_client = first.per_client()
        assert per_client["a"] == statements[:6]
        assert per_client["b"] == statements[6:12]

    def test_prefix_suffix_partition(self, small_workload):
        _, statements = small_workload
        trace = MultiClientTrace.split(statements[:10], ["a", "b"])
        assert trace.prefix(4).entries + trace.suffix(4).entries == trace.entries


class TestEngineDeterminism:
    """Interleaving N clients through pump() ≡ one WFIT on the merged trace."""

    def test_pump_matches_single_wfit(self, small_workload):
        stats, statements = small_workload
        statements = statements[:16]
        options = dict(idx_cnt=8, state_cnt=64)

        trace = MultiClientTrace.split(statements, ["a", "b"])
        engine = TuningEngine(
            WhatIfOptimizer(stats), StatsTransitionCosts(stats),
            batch_size=3, **options,
        )
        engine_recs = []
        for client, statement in trace:
            engine.submit(client, statement)
            engine.pump(1)
            engine_recs.append(engine.tuner.recommend())

        single = WFIT(
            WhatIfOptimizer(stats), StatsTransitionCosts(stats), **options
        )
        single_recs = [
            single.analyze_statement(statement)
            for statement in trace.merged_statements()
        ]
        assert engine_recs == single_recs
        assert len(engine.tuner.partition) == len(single.partition)
        for ours, theirs in zip(engine.tuner._instances, single._instances):
            assert ours.indices == theirs.indices
            assert ours.work_function() == theirs.work_function()

    def test_batched_pump_matches_stepwise(self, small_workload):
        stats, statements = small_workload
        statements = statements[:16]
        options = dict(idx_cnt=8, state_cnt=64)
        trace = MultiClientTrace.split(statements, ["a", "b", "c"])

        batched = TuningEngine(
            WhatIfOptimizer(stats), StatsTransitionCosts(stats),
            batch_size=5, **options,
        )
        batched.submit_many(trace)
        batched.pump()

        stepwise = TuningEngine(
            WhatIfOptimizer(stats), StatsTransitionCosts(stats),
            batch_size=1, **options,
        )
        for client, statement in trace:
            stepwise.submit(client, statement)
            stepwise.pump()

        assert batched.tuner.recommend() == stepwise.tuner.recommend()
        assert batched.total_work == pytest.approx(
            stepwise.total_work, abs=1e-9
        )
