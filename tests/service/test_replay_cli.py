"""Smoke tests for the ``python -m repro.service`` replay CLI."""

from __future__ import annotations

import json

import pytest

from repro.service.replay import main

TRACE_FLAGS = [
    "--scale", "0.02", "--per-phase", "2", "--seed", "7",
    "--clients", "2", "--limit", "10",
]


class TestReplay:
    def test_replay_emits_metrics(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        code = main(["replay", *TRACE_FLAGS, "--metrics-out", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["command"] == "replay"
        assert report["statements"] == 10
        assert report["metrics"]["statements_processed"] == 10
        assert set(report["metrics"]["sessions"]) == {"client-0", "client-1"}

    def test_checkpoint_at_requires_path(self, capsys):
        code = main(["replay", *TRACE_FLAGS, "--checkpoint-at", "4"])
        assert code == 2

    def test_checkpoint_path_requires_position(self, tmp_path):
        code = main([
            "replay", *TRACE_FLAGS,
            "--checkpoint", str(tmp_path / "ckpt.json"),
        ])
        assert code == 2

    def test_checkpoint_resume_verify(self, tmp_path):
        checkpoint = tmp_path / "ckpt.json"
        replay_out = tmp_path / "replay.json"
        code = main([
            "replay", *TRACE_FLAGS,
            "--checkpoint-at", "5", "--checkpoint", str(checkpoint),
            "--metrics-out", str(replay_out),
        ])
        assert code == 0
        assert checkpoint.exists()

        resume_out = tmp_path / "resume.json"
        code = main([
            "resume", "--checkpoint", str(checkpoint), "--verify",
            "--metrics-out", str(resume_out),
        ])
        assert code == 0
        report = json.loads(resume_out.read_text())
        assert report["resumed_at"] == 5
        assert report["statements_replayed"] == 5
        assert report["verify"]["verified"] is True
        assert report["verify"]["recommendation_mismatches"] == []
        # Uninterrupted and restored runs finish with the same metric.
        replay_report = json.loads(replay_out.read_text())
        assert report["verify"]["total_work_restored"] == pytest.approx(
            replay_report["metrics"]["total_work"], rel=1e-9
        )

    def test_report_carries_obs_snapshot(self, tmp_path):
        from repro.obs.registry import text_from_snapshot, validate_snapshot

        out = tmp_path / "metrics.json"
        assert main(["replay", *TRACE_FLAGS, "--metrics-out", str(out)]) == 0
        report = json.loads(out.read_text())
        snapshot = report["obs"]
        validate_snapshot(snapshot)
        names = set(snapshot["metrics"])
        assert {
            "repro_wfa_relax_seconds",
            "repro_whatif_calls_total",
            "repro_wfit_statements_total",
            "repro_engine_statements_total",
            "repro_span_seconds",
        } <= names
        text_from_snapshot(snapshot)  # renders as Prometheus text

    def test_trace_out_writes_chrome_trace(self, tmp_path):
        out = tmp_path / "metrics.json"
        trace = tmp_path / "trace.json"
        assert main([
            "replay", *TRACE_FLAGS,
            "--metrics-out", str(out), "--trace-out", str(trace),
        ]) == 0
        document = json.loads(trace.read_text())
        events = document["traceEvents"]
        assert events, "replay produced no spans"
        names = {event["name"] for event in events}
        assert {"engine.analyze", "wfit.analyze", "wfit.relax"} <= names
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0

    def test_resume_rejects_foreign_checkpoint(self, tmp_path, toy_stats):
        from repro.db import StatsTransitionCosts
        from repro.optimizer import WhatIfOptimizer
        from repro.service import TuningEngine, save_checkpoint

        engine = TuningEngine(
            WhatIfOptimizer(toy_stats), StatsTransitionCosts(toy_stats),
            idx_cnt=6, state_cnt=32,
        )
        path = tmp_path / "bare.json"
        save_checkpoint(path, engine.checkpoint())  # no trace parameters
        assert main(["resume", "--checkpoint", str(path)]) == 2
