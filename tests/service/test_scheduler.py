"""Priority scheduler contracts (ISSUE 10): lanes, admission, drain rules.

Unit level: :class:`repro.service.scheduler.IngestScheduler` drain order
is a pure function of (priority rank, arrival seq), admission control is
all-or-nothing with typed rejections, and ``take_fifo`` reproduces pure
arrival order. Engine level: uniform-priority ingest is bit-identical to
the pre-scheduler FIFO on both kernel backends (the refactor's
no-behavior-change proof), foreground always preempts a queued background
flood, ``stop``/``checkpoint`` drain exactly the classes they document,
and the deferred-task lane runs only in idle windows with exceptions
contained.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.wfa_kernel import available_backends, force_backend
from repro.db import StatsTransitionCosts
from repro.optimizer import WhatIfOptimizer
from repro.service import (
    DEFAULT_PRIORITY,
    IngestScheduler,
    PRIORITIES,
    QueueFull,
    TuningEngine,
)
from repro.service.scheduler import (
    BACKGROUND_CLASSES,
    FOREGROUND_CLASSES,
    normalize_priority,
)

SALES = "shop.sales"


def narrow_sql(stats, column="amount", fraction=0.02, offset=0.0):
    col = stats.column_stats(SALES, column)
    lo = col.min_value + col.domain_width * offset
    hi = lo + col.domain_width * fraction
    return f"SELECT count(*) FROM shop.sales WHERE {column} BETWEEN {lo} AND {hi}"


def make_engine(toy_stats, **kwargs) -> TuningEngine:
    kwargs.setdefault("batch_size", 4)
    kwargs.setdefault("idx_cnt", 8)
    kwargs.setdefault("state_cnt", 64)
    return TuningEngine(
        WhatIfOptimizer(toy_stats), StatsTransitionCosts(toy_stats), **kwargs
    )


# ---------------------------------------------------------------------------
# Scheduler data structure
# ---------------------------------------------------------------------------

class TestSchedulerUnit:
    def test_priority_constants(self):
        assert PRIORITIES == ("interactive", "normal", "background")
        assert DEFAULT_PRIORITY == "normal"
        assert FOREGROUND_CLASSES + BACKGROUND_CLASSES == PRIORITIES

    def test_normalize_rejects_unknown(self):
        assert normalize_priority("interactive") == "interactive"
        with pytest.raises(ValueError, match="unknown priority"):
            normalize_priority("turbo")

    def test_take_orders_by_rank_then_seq(self):
        sched = IngestScheduler()
        sched.push("background", "c", "s0")
        sched.push("normal", "a", "s1")
        sched.push("interactive", "b", "s2")
        sched.push("normal", "a", "s3")
        sched.push("interactive", "b", "s4")
        popped = sched.take(10, PRIORITIES)
        assert [e.statement for e in popped] == ["s2", "s4", "s1", "s3", "s0"]
        # FIFO within a class, classes in rank order.
        assert [e.priority for e in popped] == (
            ["interactive"] * 2 + ["normal"] * 2 + ["background"]
        )

    def test_take_respects_class_filter_and_limit(self):
        sched = IngestScheduler()
        for i in range(3):
            sched.push("background", "c", f"b{i}")
            sched.push("normal", "a", f"n{i}")
        assert [
            e.statement for e in sched.take(2, ("background",))
        ] == ["b0", "b1"]
        assert sched.depths() == {
            "interactive": 0, "normal": 3, "background": 1,
        }

    def test_take_fifo_is_pure_arrival_order(self):
        sched = IngestScheduler()
        sched.push("background", "c", "s0")
        sched.push("interactive", "b", "s1")
        sched.push("normal", "a", "s2")
        assert [e.statement for e in sched.take_fifo(3)] == ["s0", "s1", "s2"]

    def test_entries_snapshot_in_arrival_order(self):
        sched = IngestScheduler()
        sched.push("background", "c", "s0")
        sched.push("interactive", "b", "s1")
        assert [e.statement for e in sched.entries()] == ["s0", "s1"]
        assert sched.depth() == 2  # snapshot does not pop

    def test_admission_rejects_then_admits_after_drain(self):
        sched = IngestScheduler(limits={"background": 2})
        sched.push("background", "c", "s0")
        sched.push("background", "c", "s1")
        with pytest.raises(QueueFull) as info:
            sched.push("background", "c", "s2")
        assert info.value.priority == "background"
        assert info.value.limit == 2
        assert info.value.depth == 2
        assert sched.rejections()["background"] == 1
        assert sched.depth() == 2
        sched.take(1, ("background",))
        sched.push("background", "c", "s2")  # retry succeeds after drain
        assert sched.depth() == 2

    def test_push_many_is_all_or_nothing(self):
        sched = IngestScheduler(limits={"normal": 3})
        sched.push("normal", "a", "s0")
        with pytest.raises(QueueFull) as info:
            sched.push_many([("normal", "a", s) for s in ("s1", "s2", "s3")])
        assert info.value.requested == 3
        assert sched.depth() == 1  # nothing from the batch was enqueued
        sched.push_many([("normal", "a", s) for s in ("s1", "s2")])
        assert sched.depth() == 3

    def test_priorities_seen_is_sticky(self):
        sched = IngestScheduler()
        sched.push("normal", "a", "s0")
        assert not sched.priorities_seen
        sched.push("interactive", "a", "s1")
        assert sched.priorities_seen
        sched.take(10, PRIORITIES)
        assert sched.priorities_seen  # survives draining

    @settings(max_examples=60, deadline=None)
    @given(
        priorities=st.lists(
            st.sampled_from(PRIORITIES), min_size=1, max_size=30
        ),
        chunk=st.integers(1, 8),
    )
    def test_drain_order_is_pure_function_of_rank_and_seq(
        self, priorities, chunk
    ):
        """Popping in any chunking yields the same global order, and that
        order is exactly (class rank, arrival seq)."""
        sched = IngestScheduler()
        for seq, priority in enumerate(priorities):
            sched.push(priority, "c", seq)
        drained = []
        while True:
            got = sched.take(chunk, PRIORITIES)
            if not got:
                break
            drained.extend(got)
        expected = sorted(
            range(len(priorities)),
            key=lambda seq: (PRIORITIES.index(priorities[seq]), seq),
        )
        assert [e.statement for e in drained] == expected

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 30),
        priority=st.sampled_from(PRIORITIES),
        chunk=st.integers(1, 8),
    )
    def test_uniform_priority_drains_fifo(self, n, priority, chunk):
        sched = IngestScheduler()
        for seq in range(n):
            sched.push(priority, "c", seq)
        drained = []
        while True:
            got = sched.take(chunk, PRIORITIES)
            if not got:
                break
            drained.extend(e.statement for e in got)
        assert drained == list(range(n))


# ---------------------------------------------------------------------------
# Engine: uniform priority == the pre-scheduler FIFO, bit for bit
# ---------------------------------------------------------------------------

class TestUniformPriorityBitIdentity:
    @pytest.mark.parametrize("backend", available_backends())
    @settings(max_examples=8, deadline=None)
    @given(
        data=st.data(),
        priority=st.sampled_from(PRIORITIES),
        batch_size=st.integers(1, 5),
    )
    def test_engine_matches_fifo_drain(
        self, toy_stats, backend, data, priority, batch_size
    ):
        """With every submission in ONE class, the priority scheduler's
        pump must reproduce the old FIFO ingest exactly: same analysis
        order, same recommendations, bit-identical totWork — on both
        kernel backends."""
        n = data.draw(st.integers(2, 8), label="n_statements")
        offsets = [
            data.draw(st.integers(0, 9), label=f"offset{i}")
            for i in range(n)
        ]
        clients = [
            data.draw(st.sampled_from(["a", "b"]), label=f"client{i}")
            for i in range(n)
        ]
        with force_backend(backend):
            runs = []
            for fifo in (False, True):
                engine = make_engine(toy_stats, batch_size=batch_size)
                for client, offset in zip(clients, offsets):
                    engine.submit(
                        client,
                        narrow_sql(toy_stats, offset=offset * 0.05),
                        priority=priority,
                    )
                if fifo:
                    assert engine._pump_fifo(n) == n
                else:
                    assert engine.pump() == n
                runs.append((
                    tuple(sorted(ix.name for ix in engine.tuner.recommend())),
                    engine.total_work,
                    engine.realized_total_work,
                    {
                        c: engine.session(c).statements_processed
                        for c in set(clients)
                    },
                ))
            assert runs[0] == runs[1]


# ---------------------------------------------------------------------------
# Engine: admission control
# ---------------------------------------------------------------------------

class TestEngineAdmission:
    def test_submit_rejected_then_retried(self, toy_stats):
        engine = make_engine(toy_stats, queue_limits={"interactive": 2})
        sql = narrow_sql(toy_stats)
        engine.submit("a", sql, priority="interactive")
        engine.submit("a", sql, priority="interactive")
        with pytest.raises(QueueFull):
            engine.submit("a", sql, priority="interactive")
        metrics = engine.metrics()
        assert metrics["backpressure_rejections"] == 1
        assert metrics["backpressure_rejections_by_class"]["interactive"] == 1
        # The rejected statement was never admitted anywhere.
        assert engine.queue_depth == 2
        engine.pump()
        engine.submit("a", sql, priority="interactive")  # retry succeeds
        assert engine.queue_depths["interactive"] == 1

    def test_rejected_submit_does_not_count_as_submitted(self, toy_stats):
        engine = make_engine(toy_stats, queue_limits={"normal": 1})
        sql = narrow_sql(toy_stats)
        session = engine.session("a")
        session.submit(sql)
        with pytest.raises(QueueFull):
            session.submit(sql)
        engine.pump()
        assert session.statements_processed == 1

    def test_submit_many_all_or_nothing(self, toy_stats):
        engine = make_engine(toy_stats, queue_limits={"background": 2})
        sql = narrow_sql(toy_stats)
        with pytest.raises(QueueFull):
            engine.submit_many([("a", sql, "background")] * 3)
        assert engine.queue_depth == 0
        engine.submit_many([("a", sql, "background")] * 2)
        assert engine.queue_depths["background"] == 2

    def test_limits_are_per_class(self, toy_stats):
        engine = make_engine(toy_stats, queue_limits={"background": 1})
        sql = narrow_sql(toy_stats)
        engine.submit("a", sql, priority="background")
        with pytest.raises(QueueFull):
            engine.submit("a", sql, priority="background")
        # Other classes are not affected by the background bound.
        engine.submit("a", sql)
        engine.submit("a", sql, priority="interactive")
        assert engine.queue_depth == 3


# ---------------------------------------------------------------------------
# Engine: lane rules (foreground first, paced background, deferred tasks)
# ---------------------------------------------------------------------------

class TestLaneRules:
    def test_foreground_never_starved_by_background_backlog(self, toy_stats):
        engine = make_engine(toy_stats)
        sql = narrow_sql(toy_stats)
        for _ in range(6):
            engine.submit("flood", sql, priority="background")
        engine.submit("fg", sql, priority="interactive")
        engine.submit("fg", sql)  # normal
        # One bounded pump: both foreground statements go first.
        assert engine.pump(2) == 2
        assert engine.session("fg").statements_processed == 2
        assert engine.session("flood").statements_processed == 0
        assert engine.queue_depths["background"] == 6

    def test_background_batches_are_bounded(self, toy_stats):
        engine = make_engine(
            toy_stats, batch_size=4, background_batch_size=2
        )
        sql = narrow_sql(toy_stats)
        for _ in range(4):
            engine.submit("flood", sql, priority="background")
        before = engine.batches_processed
        engine.pump()
        # 4 background statements in batches of ≤2 → 2 batches, even
        # though the foreground batch budget is 4.
        assert engine.batches_processed - before == 2

    def test_interactive_preempts_between_background_batches(self, toy_stats):
        engine = make_engine(toy_stats, background_batch_size=1)
        sql = narrow_sql(toy_stats)
        for _ in range(3):
            engine.submit("flood", sql, priority="background")
        # Budget 2: one background batch runs, then the loop re-checks
        # the foreground queues before the next — an arrival submitted
        # mid-pump would land there. Here we prove the granularity: two
        # background singleton batches, not one batch of two.
        before = engine.batches_processed
        assert engine.pump(2) == 2
        assert engine.batches_processed - before == 2

    def test_pump_classes_filter(self, toy_stats):
        engine = make_engine(toy_stats)
        sql = narrow_sql(toy_stats)
        engine.submit("a", sql, priority="background")
        engine.submit("a", sql)
        assert engine.pump(classes=("background",)) == 1
        assert engine.queue_depths == {
            "interactive": 0, "normal": 1, "background": 0,
        }

    def test_deferred_tasks_run_only_when_queues_idle(self, toy_stats):
        engine = make_engine(toy_stats)
        ran = []
        engine.defer("probe", lambda: ran.append("probe"))
        engine.submit("a", narrow_sql(toy_stats))
        assert engine.run_background_tasks() == 0  # statement queued
        assert ran == []
        engine.pump()
        assert engine.run_background_tasks() == 1
        assert ran == ["probe"]
        tasks = engine.metrics()["background_tasks"]
        assert tasks["deferred"] == 1
        assert tasks["run"] == 1
        assert tasks["queued"] == 0

    def test_deferred_task_errors_are_contained(self, toy_stats):
        engine = make_engine(toy_stats)

        def boom() -> None:
            raise RuntimeError("maintenance failed")

        engine.defer("boom", boom)
        engine.defer("ok", lambda: None)
        assert engine.run_background_tasks() == 2
        tasks = engine.metrics()["background_tasks"]
        assert tasks["errors"] == 1
        assert "maintenance failed" in tasks["last_error"]
        assert tasks["run"] == 2


# ---------------------------------------------------------------------------
# Engine: drain/stop/checkpoint semantics
# ---------------------------------------------------------------------------

class TestDrainSemantics:
    def test_stop_drains_foreground_only(self, toy_stats):
        engine = make_engine(toy_stats)
        sql = narrow_sql(toy_stats)
        engine.start(poll_interval=0.005)
        engine.stop(drain=False)  # thread down; queues untouched from here
        engine.submit("a", sql, priority="interactive")
        engine.submit("a", sql)
        engine.submit("flood", sql, priority="background")
        engine.stop(drain=True)
        assert engine.queue_depths == {
            "interactive": 0, "normal": 0, "background": 1,
        }
        assert engine.session("a").statements_processed == 2

    def test_checkpoint_drain_true_drains_every_class(self, toy_stats):
        engine = make_engine(toy_stats)
        sql = narrow_sql(toy_stats)
        engine.submit("a", sql, priority="interactive")
        engine.submit("flood", sql, priority="background")
        document = engine.checkpoint(drain=True)
        assert engine.queue_depth == 0
        assert document["pending"] == []
        assert engine.session("flood").statements_processed == 1

    def test_checkpoint_drain_false_serializes_priorities(self, toy_stats):
        engine = make_engine(toy_stats)
        sql = narrow_sql(toy_stats)
        engine.submit("a", sql, priority="interactive")
        engine.submit("b", sql)
        engine.submit("c", sql, priority="background")
        document = engine.checkpoint(drain=False)
        assert engine.queue_depth == 3  # checkpoint paid for no analysis
        pending = document["pending"]
        assert [item.get("priority", "normal") for item in pending] == [
            "interactive", "normal", "background",
        ]
        restored = TuningEngine.restore(
            document,
            WhatIfOptimizer(toy_stats),
            StatsTransitionCosts(toy_stats),
        )
        assert restored.queue_depths == engine.queue_depths
        # The restored queue drains in the same class order.
        restored.pump(1)
        assert restored.session("a").statements_processed == 1

    def test_threaded_flood_interactive_finishes_first(self, toy_stats):
        """Live drain thread, queued background flood, concurrent
        interactive submitters: every interactive statement completes
        while flood backlog remains, and nothing is rejected."""
        engine = make_engine(toy_stats, background_pacing=0.002)
        sql = narrow_sql(toy_stats)
        flood = 400
        engine.submit_many(
            [("flood", sql, "background")] * flood
        )
        engine.start(poll_interval=0.005)
        per_thread = 5
        errors = []

        def trickle(client: str) -> None:
            try:
                session = engine.session(client, priority="interactive")
                for i in range(per_thread):
                    session.submit(narrow_sql(toy_stats, offset=i * 0.05))
                    time.sleep(0.001)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=trickle, args=(f"fg-{i}",))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            done = sum(
                engine.session(f"fg-{i}").statements_processed
                for i in range(2)
            )
            if done == 2 * per_thread:
                break
            time.sleep(0.002)
        remaining = engine.queue_depths["background"]
        engine.stop(drain=False)
        assert not errors
        assert done == 2 * per_thread
        assert remaining > 0, "flood drained before the interactive trickle"
        assert engine.backpressure_rejections == 0
        # The flood stays available for later idle windows.
        assert engine.pump(classes=BACKGROUND_CLASSES) == remaining
