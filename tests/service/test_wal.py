"""WAL edge cases: framing, torn tails, corruption, sequence discipline.

These are the unit-level durability contracts (ISSUE 9 satellite): an
empty log is valid, a torn final record is the tolerated crash artifact,
mid-file corruption is refused *with the byte offset*, sequence numbers
survive both checkpoint truncation and process restarts (the idempotence
device), and group commit loses at most the unsynced suffix. The
integration-level kill-point properties live in
``test_crash_recovery.py``.
"""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from faults import FaultyIO, SimulatedCrash
from repro.ioutil import atomic_write_json
from repro.service.wal import (
    CorruptRecord,
    Durability,
    WalError,
    WriteAheadLog,
    encode_record,
    read_wal,
    scan_wal,
)

_HEADER = struct.Struct("<III")
_LENGTH = struct.Struct("<I")


def _frame(body: bytes) -> bytes:
    """Hand-frame a record body with the on-disk header layout."""
    length = _LENGTH.pack(len(body))
    return (
        _HEADER.pack(len(body), zlib.crc32(length), zlib.crc32(body)) + body
    )


class _StubEngine:
    """Just enough engine for Durability.attach in WAL-only tests."""

    def __init__(self) -> None:
        self.wal = None

    def attach_wal(self, wal) -> None:
        self.wal = wal


def _records(*payloads, start_seq=1):
    return b"".join(
        encode_record(start_seq + i, "submit", payload)
        for i, payload in enumerate(payloads)
    )


# ---------------------------------------------------------------------------
# scan_wal framing
# ---------------------------------------------------------------------------

class TestScan:
    def test_empty_log_is_valid(self):
        scan = scan_wal(b"")
        assert scan.records == ()
        assert scan.valid_length == 0
        assert not scan.torn

    def test_round_trip(self):
        data = _records({"a": 1}, {"b": 2}, {"c": 3})
        scan = scan_wal(data)
        assert [r.seq for r in scan.records] == [1, 2, 3]
        assert [r.payload for r in scan.records] == [{"a": 1}, {"b": 2}, {"c": 3}]
        assert scan.valid_length == len(data)
        assert not scan.torn

    @pytest.mark.parametrize("cut", [1, 4, 7, -1])
    def test_torn_final_record_tolerated(self, cut):
        """Any incomplete tail — inside the header or inside the body —
        yields the clean two-record prefix and torn=True."""
        clean = _records({"a": 1}, {"b": 2})
        tail = encode_record(3, "submit", {"c": 3})
        data = clean + (tail[:cut] if cut > 0 else tail[:-1])
        scan = scan_wal(data)
        assert [r.seq for r in scan.records] == [1, 2]
        assert scan.valid_length == len(clean)
        assert scan.torn

    def test_corrupt_crc_mid_file_refused_with_offset(self):
        first = encode_record(1, "submit", {"a": 1})
        data = first + _records({"b": 2}, {"c": 3}, start_seq=2)
        # Flip one byte inside record 2's body.
        corrupt = bytearray(data)
        corrupt[len(first) + _HEADER.size] ^= 0xFF
        with pytest.raises(CorruptRecord) as info:
            scan_wal(bytes(corrupt))
        assert info.value.offset == len(first)
        assert f"byte offset {len(first)}" in str(info.value)

    def test_corrupt_length_field_refused_not_healed(self):
        """A damaged length field mid-file must be refused as corruption.

        Without a header checksum, a corrupted length makes the scanner
        believe the remaining bytes form one giant torn record — and
        attach/recovery would then 'heal' every subsequent valid record
        away, silently losing acknowledged data.
        """
        first = encode_record(1, "submit", {"a": 1})
        data = first + _records({"b": 2}, {"c": 3}, start_seq=2)
        corrupt = bytearray(data)
        # Blow up record 2's length field to dwarf the remaining bytes.
        corrupt[len(first) : len(first) + _LENGTH.size] = _LENGTH.pack(
            2**30
        )
        with pytest.raises(CorruptRecord) as info:
            scan_wal(bytes(corrupt))
        assert info.value.offset == len(first)
        assert "header" in str(info.value)

    def test_single_bit_flip_in_length_refused(self):
        first = encode_record(1, "submit", {"a": 1})
        data = bytearray(first + _records({"b": 2}, {"c": 3}, start_seq=2))
        data[len(first)] ^= 0x01
        with pytest.raises(CorruptRecord) as info:
            scan_wal(bytes(data))
        assert info.value.offset == len(first)

    def test_valid_crc_but_bad_json_refused(self):
        framed = _frame(b"not-json")
        with pytest.raises(CorruptRecord) as info:
            scan_wal(_records({"a": 1}) + framed)
        assert info.value.offset == len(_records({"a": 1}))

    def test_record_missing_seq_refused(self):
        framed = _frame(json.dumps({"kind": "submit"}).encode())
        with pytest.raises(CorruptRecord):
            scan_wal(framed)

    def test_corrupt_record_is_a_wal_error(self):
        assert issubclass(CorruptRecord, WalError)


# ---------------------------------------------------------------------------
# WriteAheadLog on the real filesystem
# ---------------------------------------------------------------------------

class TestWriteAheadLog:
    def test_append_and_read_back(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        assert wal.append("submit", {"sql": "SELECT 1"}) == 1
        assert wal.append("vote", {"position": 1}) == 2
        wal.close()
        scan = read_wal(tmp_path / "wal.log")
        assert [(r.seq, r.kind) for r in scan.records] == [
            (1, "submit"),
            (2, "vote"),
        ]
        assert not scan.torn

    def test_reset_rotates_but_seq_continues(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append("submit", {"n": 1})
        wal.append("submit", {"n": 2})
        wal.reset()
        assert wal.append("submit", {"n": 3}) == 3
        wal.close()
        scan = read_wal(tmp_path / "wal.log")
        # The rotated log opens with a floor record naming the covered
        # prefix, then continues with post-reset records.
        assert [(r.seq, r.kind) for r in scan.records] == [
            (2, "floor"),
            (3, "submit"),
        ]

    def test_reset_preserves_records_appended_after_the_mark(self, tmp_path):
        """The checkpoint race: a record acknowledged between the
        snapshot's state capture (the mark) and the rotation must survive
        — it is covered by neither the snapshot nor, with a naive
        truncate-everything reset, the log."""
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append("submit", {"n": 1})
        wal.append("submit", {"n": 2})
        assert wal.checkpoint_mark() == 2
        wal.append("submit", {"n": 3})  # lands after the mark
        wal.reset(note={"snapshot_id": 7})
        wal.close()
        scan = read_wal(tmp_path / "wal.log")
        assert [(r.seq, r.kind) for r in scan.records] == [
            (2, "floor"),
            (3, "submit"),
        ]
        assert scan.records[0].payload == {"snapshot_id": 7}
        assert scan.records[1].payload == {"n": 3}

    def test_reopen_after_rotation_continues_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append("submit", {"n": 1})
        wal.checkpoint_mark()
        wal.reset()
        wal.close()
        scan = read_wal(tmp_path / "wal.log")
        reopened = WriteAheadLog(
            tmp_path / "wal.log", next_seq=scan.records[-1].seq + 1
        )
        assert reopened.append("submit", {"n": 2}) == 2
        reopened.close()

    def test_reopen_continues_after_last_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append("submit", {"n": 1})
        wal.close()
        scan = read_wal(tmp_path / "wal.log")
        reopened = WriteAheadLog(
            tmp_path / "wal.log", next_seq=scan.records[-1].seq + 1
        )
        assert reopened.append("submit", {"n": 2}) == 2
        reopened.close()
        scan = read_wal(tmp_path / "wal.log")
        assert [r.seq for r in scan.records] == [1, 2]

    def test_truncate_to_cuts_torn_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        clean = _records({"n": 1})
        path.write_bytes(clean + encode_record(2, "submit", {"n": 2})[:-3])
        scan = read_wal(path)
        assert scan.torn
        wal = WriteAheadLog(path, next_seq=2, truncate_to=scan.valid_length)
        wal.append("submit", {"n": 2})
        wal.close()
        healed = read_wal(path)
        assert not healed.torn
        assert [r.seq for r in healed.records] == [1, 2]

    def test_closed_wal_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        with pytest.raises(WalError):
            wal.append("submit", {})

    def test_next_seq_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "wal.log", next_seq=0)


# ---------------------------------------------------------------------------
# Group commit + crash semantics (FaultyIO)
# ---------------------------------------------------------------------------

class TestGroupCommit:
    def _durable_wal(self, io, *, fsync_interval_ms):
        io.makedirs("/w")
        wal = WriteAheadLog(
            "/w/wal.log", fsync_interval_ms=fsync_interval_ms, io=io
        )
        io.fsync_dir("/w")  # pin the file's directory entry
        return wal

    def test_interval_zero_makes_every_append_durable(self):
        io = FaultyIO()
        wal = self._durable_wal(io, fsync_interval_ms=0)
        for n in range(3):
            wal.append("submit", {"n": n})
        assert wal.synced_seq == wal.appended_seq == 3
        io.crash()
        assert [r.seq for r in read_wal("/w/wal.log", io=io).records] == [1, 2, 3]

    def test_group_commit_loses_only_the_unsynced_suffix(self):
        io = FaultyIO()
        # Effectively-infinite interval: only the first append (which seeds
        # the pacing clock) fsyncs; the rest ride the page cache.
        wal = self._durable_wal(io, fsync_interval_ms=1e9)
        for n in range(5):
            wal.append("submit", {"n": n})
        assert wal.appended_seq == 5
        assert wal.synced_seq == 1
        io.crash()
        survivors = read_wal("/w/wal.log", io=io).records
        assert [r.seq for r in survivors] == [1]

    def test_sync_forces_the_suffix_durable(self):
        io = FaultyIO()
        wal = self._durable_wal(io, fsync_interval_ms=1e9)
        for n in range(5):
            wal.append("submit", {"n": n})
        wal.sync()
        assert wal.synced_seq == 5
        io.crash()
        assert len(read_wal("/w/wal.log", io=io).records) == 5

    def test_dropped_fsyncs_lose_everything_unacknowledged(self):
        io = FaultyIO()
        wal = self._durable_wal(io, fsync_interval_ms=0)
        io.drop_fsyncs = True  # a lying disk from here on
        wal.append("submit", {"n": 1})
        io.crash()
        assert read_wal("/w/wal.log", io=io).records == ()

    def test_crash_before_fsync_loses_the_record(self):
        io = FaultyIO()
        wal = self._durable_wal(io, fsync_interval_ms=0)
        wal.append("submit", {"n": 1})
        io.schedule_crash(op="fsync", phase="before")
        with pytest.raises(SimulatedCrash):
            wal.append("submit", {"n": 2})
        assert [r.seq for r in read_wal("/w/wal.log", io=io).records] == [1]

    def test_crash_mid_write_leaves_a_tolerated_torn_tail(self):
        io = FaultyIO()
        wal = self._durable_wal(io, fsync_interval_ms=0)
        wal.append("submit", {"n": 1})
        io.schedule_crash(op="write", phase="mid")
        with pytest.raises(SimulatedCrash):
            wal.append("submit", {"n": 2})
        scan = read_wal("/w/wal.log", io=io)
        assert scan.torn
        assert [r.seq for r in scan.records] == [1]


# ---------------------------------------------------------------------------
# atomic_write_json crash atomicity (FaultyIO)
# ---------------------------------------------------------------------------

class TestAtomicWrite:
    def _publish(self, io, document):
        atomic_write_json("/d/doc.json", document, io=io)

    def test_reader_sees_old_or_new_never_torn(self):
        io = FaultyIO()
        io.makedirs("/d")
        self._publish(io, {"generation": 1})
        for phase, op in [
            ("before", "write"),
            ("before", "fsync"),
            ("before", "replace"),
            ("after", "replace"),  # renamed but the rename never made disk
            ("before", "fsync_dir"),
        ]:
            io.schedule_crash(op=op, phase=phase)
            with pytest.raises(SimulatedCrash):
                self._publish(io, {"generation": 2})
            assert json.loads(io.read_bytes("/d/doc.json")) == {"generation": 1}

    def test_publish_durable_after_dir_fsync(self):
        io = FaultyIO()
        io.makedirs("/d")
        self._publish(io, {"generation": 1})
        self._publish(io, {"generation": 2})
        io.crash()
        assert json.loads(io.read_bytes("/d/doc.json")) == {"generation": 2}
        assert "/d/doc.json.tmp" not in io.durable_names()


# ---------------------------------------------------------------------------
# Durability sequence floor across restarts
# ---------------------------------------------------------------------------

class TestSequenceFloor:
    def test_seq_floor_clears_newest_snapshot_after_restart(self):
        """A checkpoint truncates the log; after a *restart* the fresh scan
        sees an empty file. Sequencing must still resume above the
        snapshot's wal_seq, or recovery would skip post-restart records
        as already covered."""
        io = FaultyIO()
        durability = Durability("/dur", io=io, fsync_interval_ms=0)
        wal = durability.attach(_StubEngine())
        for n in range(3):
            wal.append("submit", {"n": n})
        # Stand in for Durability.checkpoint: publish a snapshot covering
        # seq <= 3, then rotate — without needing a real engine.
        atomic_write_json(
            durability.snapshot_path(1),
            {"version": 3, "kind": "full", "snapshot_id": 1, "wal_seq": 3},
            io=io,
        )
        wal.reset()
        durability.close()

        restarted = Durability("/dur", io=io, fsync_interval_ms=0)
        wal = restarted.attach(_StubEngine())
        assert wal.append("submit", {"n": 3}) == 4
        restarted.close()

    def test_attach_heals_torn_tail_and_continues_seq(self):
        io = FaultyIO()
        io.makedirs("/dur")
        data = _records({"n": 1}, {"n": 2}) + encode_record(3, "submit", {})[:-2]
        handle = io.open_write("/dur/wal.log")
        io.write(handle, data)
        io.fsync(handle)
        io.close(handle)
        io.fsync_dir("/dur")

        durability = Durability("/dur", io=io, fsync_interval_ms=0)
        wal = durability.attach(_StubEngine())
        assert wal.append("submit", {"n": 3}) == 3
        scan = read_wal("/dur/wal.log", io=io)
        assert not scan.torn
        assert [r.seq for r in scan.records] == [1, 2, 3]
        durability.close()

    def test_double_attach_refused(self):
        io = FaultyIO()
        durability = Durability("/dur", io=io)
        durability.attach(_StubEngine())
        with pytest.raises(WalError):
            durability.attach(_StubEngine())
        durability.close()
