"""WAL/snapshot compatibility for the priority scheduler (ISSUE 10).

The compat contract has two directions. Backward: submit records written
by the pre-scheduler engine (PR 9) carry no ``priority`` key and must
replay as ``normal`` — explicitly, never through the session's *current*
default, which may have changed by replay time. Forward: an all-``normal``
history written by the new engine stays byte-compatible with the old
format — no ``priority`` keys, no ``drain`` records — so the two formats
are only distinguishable once a non-default class is actually used.
"""

from __future__ import annotations

import pytest

from repro.db import StatsTransitionCosts
from repro.optimizer import WhatIfOptimizer
from repro.service import Durability, TuningEngine
from repro.service.wal import WriteAheadLog, read_wal

SALES = "shop.sales"

ENGINE_OPTIONS = {"batch_size": 4, "idx_cnt": 8, "state_cnt": 64}


def narrow_sql(stats, column="amount", fraction=0.02, offset=0.0):
    col = stats.column_stats(SALES, column)
    lo = col.min_value + col.domain_width * offset
    hi = lo + col.domain_width * fraction
    return f"SELECT count(*) FROM shop.sales WHERE {column} BETWEEN {lo} AND {hi}"


def fresh_engine(stats) -> TuningEngine:
    return TuningEngine(
        WhatIfOptimizer(stats), StatsTransitionCosts(stats), **ENGINE_OPTIONS
    )


def recover(stats, directory):
    return Durability.recover(
        directory,
        WhatIfOptimizer(stats),
        StatsTransitionCosts(stats),
        engine_options=dict(ENGINE_OPTIONS),
    )


class TestMixedVersionWal:
    def test_priorityless_records_replay_as_normal(self, toy_stats, tmp_path):
        """A WAL written by the PR-9 engine (no priority keys anywhere)
        recovers with every statement in the ``normal`` class."""
        wal = WriteAheadLog(tmp_path / "wal.log")
        for offset in (0.0, 0.1):
            wal.append("submit", {
                "client_id": "legacy",
                "sql": narrow_sql(toy_stats, offset=offset),
            })
        wal.append("submit_many", {"entries": [
            {"client_id": "legacy", "sql": narrow_sql(toy_stats, offset=0.2)},
        ]})
        wal.close()
        engine, report = recover(toy_stats, tmp_path)
        assert report["wal_replayed"] == 3
        assert engine.queue_depths == {
            "interactive": 0, "normal": 3, "background": 0,
        }
        assert engine.pump() == 3
        assert engine.session("legacy").statements_processed == 3

    def test_mixed_old_and_new_records(self, toy_stats, tmp_path):
        """Old priority-less records interleaved with new priority-tagged
        ones: the old ones land in ``normal``, the new ones in their
        recorded class — regardless of any session default."""
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append("submit", {
            "client_id": "legacy", "sql": narrow_sql(toy_stats),
        })
        wal.append("submit", {
            "client_id": "fg", "sql": narrow_sql(toy_stats, offset=0.1),
            "priority": "interactive",
        })
        wal.append("submit_many", {"entries": [
            {"client_id": "flood", "sql": narrow_sql(toy_stats, offset=0.2),
             "priority": "background"},
            {"client_id": "legacy", "sql": narrow_sql(toy_stats, offset=0.3)},
        ]})
        wal.close()
        engine, report = recover(toy_stats, tmp_path)
        assert report["wal_replayed"] == 2 + 1
        assert engine.queue_depths == {
            "interactive": 1, "normal": 2, "background": 1,
        }
        # Recovery restores the queue; a fresh pump drains in class order.
        engine.pump(1)
        assert engine.session("fg").statements_processed == 1

    def test_replay_ignores_current_session_default(self, toy_stats, tmp_path):
        """The absent-key default is the *record's* class (normal), not
        whatever the session's default priority is at replay time."""
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.append("submit", {
            "client_id": "c", "sql": narrow_sql(toy_stats),
        })
        wal.close()
        engine, _ = recover(toy_stats, tmp_path)
        # Even after the recovered session's default changes, the already
        # replayed entry stays where the record put it.
        engine.session("c", priority="interactive")
        assert engine.queue_depths["normal"] == 1
        assert engine.queue_depths["interactive"] == 0


class TestForwardFormatCompat:
    def test_all_normal_history_writes_no_priority_artifacts(
        self, toy_stats, tmp_path
    ):
        """Default-priority traffic through the new engine produces a log
        with no ``priority`` keys and no ``drain`` records — byte-level
        compatibility with the PR-9 format."""
        engine = fresh_engine(toy_stats)
        durability = Durability(tmp_path, fsync_interval_ms=0)
        durability.attach(engine)
        for offset in (0.0, 0.1):
            engine.submit("a", narrow_sql(toy_stats, offset=offset))
        engine.pump()
        engine.submit_many([("b", narrow_sql(toy_stats, offset=0.2))])
        engine.pump()
        durability.close()
        scan = read_wal(tmp_path / "wal.log")
        kinds = [record.kind for record in scan.records]
        assert "drain" not in kinds
        for record in scan.records:
            if record.kind == "submit":
                assert "priority" not in record.payload
            elif record.kind == "submit_many":
                for entry in record.payload["entries"]:
                    assert "priority" not in entry

    def test_priority_history_round_trips_through_recovery(
        self, toy_stats, tmp_path
    ):
        """Once a non-default class appears, drains are logged and
        recovery reproduces the exact analysis state — processed counts,
        per-class backlog, and both totWork series."""
        engine = fresh_engine(toy_stats)
        durability = Durability(tmp_path, fsync_interval_ms=0)
        durability.attach(engine)
        engine.submit("fg", narrow_sql(toy_stats), priority="interactive")
        engine.submit("a", narrow_sql(toy_stats, offset=0.1))
        for offset in (0.2, 0.3, 0.4):
            engine.submit(
                "flood", narrow_sql(toy_stats, offset=offset),
                priority="background",
            )
        engine.pump(3)  # fg, a, and one background statement
        durability.close()
        scan = read_wal(tmp_path / "wal.log")
        assert any(record.kind == "drain" for record in scan.records)
        recovered, report = recover(toy_stats, tmp_path)
        assert report["wal_replayed"] == len(scan.records)
        assert recovered.statements_processed == engine.statements_processed
        assert recovered.queue_depths == engine.queue_depths
        assert recovered.total_work == engine.total_work
        assert recovered.realized_total_work == engine.realized_total_work
        assert (
            recovered.session("flood").statements_processed
            == engine.session("flood").statements_processed
        )
