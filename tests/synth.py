"""Synthetic task-system instances for algorithm tests.

Costs are decomposed per part (Eq. 2.1 holds by construction) and drawn as
integers so float arithmetic is exact and tie-breaking is deterministic.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.wfa import TransitionCosts
from repro.db import Index

def make_indices(count: int, table: str = "syn.t") -> List[Index]:
    """``count`` synthetic indices on one table, naturally ordered."""
    return [Index(table, (f"c{i:02d}",)) for i in range(count)]


class SyntheticWorkload:
    """A synthetic stable-cost instance.

    ``cost(q, X) = base + Σ_parts f_p(X ∩ p)`` with integer-valued part
    functions ``f_p`` (0 on the empty set), so the instance is stable with
    respect to ``partition`` by construction.
    """

    def __init__(
        self,
        partition: Sequence[FrozenSet[Index]],
        statements: Sequence[str],
        part_costs: Dict[str, List[Dict[FrozenSet[Index], float]]],
        base_cost: float,
    ) -> None:
        self.partition = [frozenset(p) for p in partition]
        self.statements = list(statements)
        self._part_costs = part_costs
        self.base_cost = base_cost
        self.indices = sorted(set().union(*self.partition))

    def cost(self, statement: str, config) -> float:
        total = self.base_cost
        config_set = frozenset(config)
        for part, table in zip(self.partition, self._part_costs[statement]):
            total += table[config_set & part]
        return total


def make_synthetic_instance(
    rng: random.Random,
    part_sizes: Sequence[int],
    n_statements: int,
    max_cost: int = 40,
    max_create: int = 60,
) -> Tuple[SyntheticWorkload, TransitionCosts]:
    """Random stable instance with integer costs and asymmetric δ."""
    indices: List[Index] = []
    partition: List[FrozenSet[Index]] = []
    offset = 0
    for size in part_sizes:
        part = [Index("syn.t", (f"c{offset + i:02d}",)) for i in range(size)]
        offset += size
        partition.append(frozenset(part))
        indices.extend(part)

    statements = [f"q{i}" for i in range(n_statements)]
    part_costs: Dict[str, List[Dict[FrozenSet[Index], float]]] = {}
    base = float(max_cost * len(indices) + 1)
    for statement in statements:
        tables: List[Dict[FrozenSet[Index], float]] = []
        for part in partition:
            ordered = sorted(part)
            table: Dict[FrozenSet[Index], float] = {}
            for mask in range(1 << len(ordered)):
                subset = frozenset(
                    ix for i, ix in enumerate(ordered) if mask & (1 << i)
                )
                table[subset] = 0.0 if not subset else float(
                    rng.randint(-max_cost, max_cost)
                )
            tables.append(table)
        part_costs[statement] = tables
    workload = SyntheticWorkload(partition, statements, part_costs, base)

    create = {ix: float(rng.randint(1, max_create)) for ix in indices}
    drop = {ix: float(rng.randint(0, 3)) for ix in indices}
    transitions = TransitionCosts(create=create, drop=drop)
    return workload, transitions
