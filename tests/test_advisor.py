"""Tests for the AdvisorSession middleware layer."""

from __future__ import annotations

import pytest

from repro.advisor import AdvisorSession, Recommendation
from repro.db import Index

SALES = "shop.sales"


@pytest.fixture()
def session(toy_stats):
    return AdvisorSession.for_stats(toy_stats, idx_cnt=8, state_cnt=64)


def narrow_sql(stats, column="amount", fraction=0.02):
    col = stats.column_stats(SALES, column)
    lo = col.min_value
    hi = lo + col.domain_width * fraction
    return f"SELECT count(*) FROM shop.sales WHERE {column} BETWEEN {lo} AND {hi}"


class TestInterception:
    def test_execute_sql_text(self, session, toy_stats):
        statement = session.execute(narrow_sql(toy_stats))
        assert statement.tables_referenced() == (SALES,)
        assert session.statements_seen == 1

    def test_execute_ast(self, session, toy_stats):
        from repro.query import select
        col = toy_stats.column_stats(SALES, "amount")
        query = (
            select(SALES)
            .where_between("amount", col.min_value, col.min_value + 5)
            .build()
        )
        session.execute(query)
        assert session.statements_seen == 1

    def test_execute_many(self, session, toy_stats):
        count = session.execute_many([narrow_sql(toy_stats)] * 5)
        assert count == 5
        assert session.statements_seen == 5


class TestRecommendations:
    def test_recommendation_diff(self, session, toy_stats):
        session.execute_many([narrow_sql(toy_stats)] * 50)
        rec = session.recommendation()
        assert isinstance(rec, Recommendation)
        assert rec.to_create, "a hot range column should be recommended"
        assert not rec.is_adopted
        ddl = rec.statements()
        assert any(stmt.startswith("CREATE INDEX") for stmt in ddl)

    def test_adoption_flow(self, session, toy_stats):
        session.execute_many([narrow_sql(toy_stats)] * 50)
        created, dropped = session.adopt()
        assert created and not dropped
        assert session.recommendation().is_adopted
        assert session.materialized == session.tuner.recommend()

    def test_drop_ddl_generated(self, session, toy_stats):
        session.execute_many([narrow_sql(toy_stats)] * 50)
        session.adopt()
        extra = Index(SALES, ("product_id",))
        session.tuner.feedback({extra}, frozenset())  # force into rec space? no-op if unknown
        rec = Recommendation(
            recommended=frozenset(), materialized=session.materialized
        )
        assert all(stmt.startswith("DROP INDEX") for stmt in rec.statements())


class TestDbaActions:
    def test_create_and_drop_with_implicit_votes(self, session, toy_stats):
        session.execute(narrow_sql(toy_stats))
        index = Index(SALES, ("amount",))
        session.create_index(index)
        assert index in session.materialized
        assert index in session.tuner.recommend(), "implicit +vote honored"
        session.drop_index(index)
        assert index not in session.materialized
        assert index not in session.tuner.recommend(), "implicit -vote honored"

    def test_double_create_rejected(self, session):
        index = Index(SALES, ("amount",))
        session.create_index(index)
        with pytest.raises(ValueError):
            session.create_index(index)

    def test_drop_unmaterialized_rejected(self, session):
        with pytest.raises(ValueError):
            session.drop_index(Index(SALES, ("amount",)))


class TestVotes:
    def test_vote_up_down(self, session, toy_stats):
        session.execute_many([narrow_sql(toy_stats)] * 5)
        index = Index(SALES, ("amount",))
        assert index in session.vote_up(index)
        assert index not in session.vote_down(index)

    def test_simultaneous_vote(self, session, toy_stats):
        session.execute_many(
            [narrow_sql(toy_stats), narrow_sql(toy_stats, "sale_date")]
        )
        a = Index(SALES, ("amount",))
        b = Index(SALES, ("sale_date",))
        rec = session.vote({a}, {b})
        assert a in rec and b not in rec


class TestAudit:
    def test_history_records_events(self, session, toy_stats):
        session.execute(narrow_sql(toy_stats))
        session.vote_up(Index(SALES, ("amount",)))
        session.create_index(Index(SALES, ("sale_date",)))
        kinds = [event.kind for event in session.history()]
        assert kinds == ["statement", "vote", "create"]

    def test_overhead_accounting(self, session, toy_stats):
        session.execute_many([narrow_sql(toy_stats)] * 3)
        overhead = session.overhead()
        assert overhead["whatif_calls"] > 0
        assert overhead["per_statement"] > 0
