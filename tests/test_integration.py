"""End-to-end integration tests over the real substrate.

These exercise the full stack — workload generation, what-if costing, IBG
statistics, candidate selection, WFA⁺ recommendation logic, OPT and the
driver — on a miniature version of the paper's benchmark.
"""

from __future__ import annotations

import pytest

from repro import (
    BC,
    OfflineOptimizer,
    StatsTransitionCosts,
    WFIT,
    WhatIfOptimizer,
    compute_fixed_partition,
    generate_workload,
    run_online,
    scaled_phases,
)


@pytest.fixture(scope="module")
def mini_experiment(bench_catalog):
    """A small but complete experiment setup shared by the tests."""
    catalog, stats = bench_catalog
    optimizer = WhatIfOptimizer(stats)
    transitions = StatsTransitionCosts(stats)
    workload = generate_workload(catalog, stats, scaled_phases(12), seed=3)
    fixed = compute_fixed_partition(
        workload.statements, optimizer, transitions, idx_cnt=16, state_cnt=128
    )
    schedule = OfflineOptimizer(
        fixed.partition, frozenset(), optimizer.cost, transitions
    ).run(workload.statements)
    return optimizer, transitions, workload, fixed, schedule


class TestFixedPartitionSetup:
    def test_candidate_budget(self, mini_experiment):
        _, _, _, fixed, _ = mini_experiment
        assert 0 < len(fixed.candidates) <= 16
        assert fixed.candidates <= fixed.universe

    def test_partition_is_partition(self, mini_experiment):
        _, _, _, fixed, _ = mini_experiment
        union = set().union(*fixed.partition)
        assert union == set(fixed.candidates)
        assert sum(len(p) for p in fixed.partition) == len(fixed.candidates)
        assert sum(2 ** len(p) for p in fixed.partition) <= 128

    def test_average_benefit_ranked_selection(self, mini_experiment):
        _, _, _, fixed, _ = mini_experiment
        chosen = {fixed.average_benefit.get(ix, 0.0) for ix in fixed.candidates}
        rejected = {
            fixed.average_benefit.get(ix, 0.0)
            for ix in fixed.universe - fixed.candidates
        }
        if chosen and rejected:
            assert max(rejected) <= max(chosen) + 1e-9


class TestEndToEndRuns:
    def test_wfit_beats_bc(self, mini_experiment):
        optimizer, transitions, workload, fixed, _ = mini_experiment
        wfit = WFIT(optimizer, transitions, fixed_partition=fixed.partition)
        wfit_result = run_online(
            wfit, workload.statements, optimizer.cost, transitions
        )
        bc = BC(fixed.candidates, frozenset(), optimizer.cost, transitions)
        bc_result = run_online(
            bc, workload.statements, optimizer.cost, transitions
        )
        assert wfit_result.total_work <= bc_result.total_work * 1.05

    def test_opt_lower_bound_holds(self, mini_experiment):
        optimizer, transitions, workload, fixed, schedule = mini_experiment
        wfit = WFIT(optimizer, transitions, fixed_partition=fixed.partition)
        result = run_online(wfit, workload.statements, optimizer.cost, transitions)
        assert schedule.lower_bound <= result.total_work + 1e-6

    def test_good_feedback_never_hurts_by_the_end(self, mini_experiment):
        optimizer, transitions, workload, fixed, schedule = mini_experiment
        baseline = run_online(
            WFIT(optimizer, transitions, fixed_partition=fixed.partition),
            workload.statements, optimizer.cost, transitions,
        )
        guided = run_online(
            WFIT(optimizer, transitions, fixed_partition=fixed.partition),
            workload.statements, optimizer.cost, transitions,
            feedback_events=schedule.sustained_events(len(workload) // 4, good=True),
        )
        assert guided.total_work <= baseline.total_work * 1.1

    def test_auto_mode_runs_clean(self, mini_experiment):
        optimizer, transitions, workload, _, _ = mini_experiment
        auto = WFIT(optimizer, transitions, idx_cnt=16, state_cnt=128, seed=2)
        result = run_online(
            auto, workload.statements, optimizer.cost, transitions
        )
        assert result.total_work > 0
        assert auto.statements_analyzed == len(workload)
        assert auto.tracked_states <= 128

    def test_lag_degrades_but_not_catastrophically(self, mini_experiment):
        optimizer, transitions, workload, fixed, _ = mini_experiment

        def fresh():
            return WFIT(optimizer, transitions, fixed_partition=fixed.partition)

        immediate = run_online(
            fresh(), workload.statements, optimizer.cost, transitions
        )
        lagged = run_online(
            fresh(), workload.statements, optimizer.cost, transitions,
            adopt_period=12,
        )
        assert immediate.total_work <= lagged.total_work + 1e-9
        assert lagged.total_work <= immediate.total_work * 4

    def test_update_heavy_workload_limits_recommendations(self, bench_catalog):
        """Sanity: on an all-write workload WFIT recommends little."""
        catalog, stats = bench_catalog
        optimizer = WhatIfOptimizer(stats)
        transitions = StatsTransitionCosts(stats)
        from repro.query.ast import InsertStatement
        statements = [InsertStatement("tpch.lineitem", 500) for _ in range(30)]
        tuner = WFIT(optimizer, transitions, idx_cnt=8, state_cnt=64)
        for statement in statements:
            tuner.analyze_statement(statement)
        assert tuner.recommend() == frozenset()
