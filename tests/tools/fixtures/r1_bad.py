# reprolint: zone=deterministic
import random
import time


def stamp() -> float:
    return time.time() + random.random()
