# reprolint: zone=deterministic
import random
import time

from repro import obs


def seeded(seed: int) -> float:
    return random.Random(seed).random()


def gated_timing() -> float:
    if obs.state.enabled:
        return time.perf_counter()
    return 0.0
