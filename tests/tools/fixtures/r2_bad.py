# reprolint: zone=deterministic


def total(values: set) -> float:
    out = 0.0
    for v in values:
        out += v
    return out
