# reprolint: zone=deterministic


def total(values: set) -> float:
    out = 0.0
    for v in sorted(values):
        out += v
    return out


def mask(values: set) -> int:
    out = 0
    for v in values:  # |= is commutative-exact: order cannot matter
        out |= v
    return out
