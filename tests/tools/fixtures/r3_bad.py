import threading


class Box:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items = []  # guarded-by: _lock

    def size(self) -> int:
        return len(self._items)
