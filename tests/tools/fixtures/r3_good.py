import threading


class Box:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items = []  # guarded-by: _lock

    def size(self) -> int:
        with self._lock:
            return len(self._items)

    def _drain(self) -> list:  # holds: _lock
        items = list(self._items)
        self._items.clear()
        return items
