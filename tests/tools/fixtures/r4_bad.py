import threading


class Pair:
    def __init__(self) -> None:
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()

    def one(self) -> None:
        with self._a_lock:
            with self._b_lock:
                pass

    def two(self) -> None:
        with self._b_lock:
            with self._a_lock:
                pass
