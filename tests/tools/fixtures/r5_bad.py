from repro import obs

_COUNTER = obs.default_registry().counter("fixture_total")


def record() -> None:
    _COUNTER.inc()
