from repro import obs

_COUNTER = obs.default_registry().counter("fixture_total")


def record() -> None:
    if obs.state.enabled:
        _COUNTER.inc()


def spanned() -> None:
    with obs.span("fixture.phase"):
        pass
