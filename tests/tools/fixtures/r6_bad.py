def export_state(items) -> dict:
    return {"items": set(items)}
