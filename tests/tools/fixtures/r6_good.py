def export_state(items) -> dict:
    return {"items": sorted(set(items))}
