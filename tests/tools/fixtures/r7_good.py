# reprolint: zone=deterministic


def total(values: frozenset) -> float:
    return sum(v * 2.0 for v in sorted(values))
