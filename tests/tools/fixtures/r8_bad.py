def collect(out=[]):
    try:
        out.append(1)
    except:
        pass
    return out
