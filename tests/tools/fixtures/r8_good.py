def collect(out=None):
    if out is None:
        out = []
    try:
        out.append(1)
    except ValueError:
        pass
    return out
