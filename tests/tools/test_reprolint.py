"""reprolint's own test suite: rules, pragmas, baseline, CLI, meta-check.

The fixture files under ``fixtures/`` are one known-bad + one known-good
source per rule; the meta-test at the bottom asserts the committed tree
itself lints clean, which is what keeps the annotations honest.
"""

from __future__ import annotations

import configparser
import json
import subprocess
import sys
from pathlib import Path

import pytest

TESTS_TOOLS = Path(__file__).resolve().parent
FIXTURES = TESTS_TOOLS / "fixtures"
REPO_ROOT = TESTS_TOOLS.parent.parent
TOOLS_DIR = REPO_ROOT / "tools"

sys.path.insert(0, str(TOOLS_DIR))

from reprolint.baseline import (  # noqa: E402
    filter_findings,
    load_baseline,
    save_baseline,
)
from reprolint.cli import main as reprolint_main  # noqa: E402
from reprolint.engine import check_file, check_paths  # noqa: E402
from reprolint.pragmas import parse_annotations  # noqa: E402
from reprolint.rules import RULES  # noqa: E402


def _findings(path: Path, rule: str):
    found, _results = check_paths([str(path)])
    return [f for f in found if f.rule == rule]


# ---------------------------------------------------------------------------
# Per-rule fixtures: bad must fire, good must not
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("rule", sorted(RULES))
def test_bad_fixture_fires(rule):
    bad = FIXTURES / f"{rule.lower()}_bad.py"
    hits = _findings(bad, rule)
    assert hits, f"{rule} did not fire on {bad.name}"
    for finding in hits:
        assert finding.line > 0
        assert finding.message


@pytest.mark.parametrize("rule", sorted(RULES))
def test_good_fixture_clean(rule):
    good = FIXTURES / f"{rule.lower()}_good.py"
    assert _findings(good, rule) == []


def test_bad_fixture_nonzero_exit(capsys):
    code = reprolint_main([str(FIXTURES / "r1_bad.py")])
    assert code == 1
    assert "R1" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Suppressions and annotation parsing
# ---------------------------------------------------------------------------

def test_suppression_with_reason_silences():
    src = (
        "# reprolint: zone=deterministic\n"
        "import time\n"
        "t = time.time()  # reprolint: disable=R1(fixture timestamp)\n"
    )
    result = check_file("fixture.py", src)
    assert result.findings == []


def test_suppression_covers_line_above():
    src = (
        "# reprolint: zone=deterministic\n"
        "import time\n"
        "# reprolint: disable=R1(fixture timestamp)\n"
        "t = time.time()\n"
    )
    assert check_file("fixture.py", src).findings == []


def test_suppression_without_reason_is_reported():
    src = (
        "# reprolint: zone=deterministic\n"
        "import time\n"
        "t = time.time()  # reprolint: disable=R1\n"
    )
    result = check_file("fixture.py", src)
    rules = {f.rule for f in result.findings}
    # The bare disable does not suppress, and is itself flagged.
    assert "SUP" in rules
    assert "R1" in rules


def test_suppression_wrong_rule_does_not_silence():
    src = (
        "# reprolint: zone=deterministic\n"
        "import time\n"
        "t = time.time()  # reprolint: disable=R2(wrong rule)\n"
    )
    assert {f.rule for f in check_file("f.py", src).findings} == {"R1"}


def test_pragma_grammar():
    ann = parse_annotations(
        "# reprolint: zone=deterministic\n"
        "# reprolint: lock-alias _wakeup=_ingest_lock\n"
        "x = 1  # guarded-by: _a_lock, _b_lock\n"
        "def f():  # holds: _a_lock\n"
        "    pass\n"
    )
    assert ann.deterministic
    assert ann.canonical_lock("_wakeup") == "_ingest_lock"
    assert ann.guarded[3] == ("_a_lock", "_b_lock")
    assert ann.holds[4] == ("_a_lock",)
    assert ann.errors == []


def test_lock_alias_counts_as_underlying_lock():
    src = (
        "# reprolint: lock-alias _wakeup=_ingest_lock\n"
        "import threading\n"
        "class E:\n"
        "    def __init__(self):\n"
        "        self._ingest_lock = threading.Lock()\n"
        "        self._wakeup = threading.Condition(self._ingest_lock)\n"
        "        self._q = []  # guarded-by: _ingest_lock\n"
        "    def drain(self):\n"
        "        with self._wakeup:\n"
        "            return list(self._q)\n"
    )
    assert check_file("engine_fixture.py", src).findings == []


def test_nested_function_resets_held_locks():
    # A closure defined inside a with block runs later — holding the lock
    # lexically is not holding it dynamically.
    src = (
        "import threading\n"
        "class E:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._q = []  # guarded-by: _lock\n"
        "    def start(self):\n"
        "        with self._lock:\n"
        "            def loop():\n"
        "                return len(self._q)\n"
        "            return loop\n"
    )
    findings = check_file("closure_fixture.py", src).findings
    assert [f.rule for f in findings] == ["R3"]


# ---------------------------------------------------------------------------
# Baseline round-trip
# ---------------------------------------------------------------------------

def test_baseline_round_trip(tmp_path):
    bad = FIXTURES / "r8_bad.py"
    findings, _ = check_paths([str(bad)])
    assert findings
    baseline_path = tmp_path / "baseline.json"
    save_baseline(str(baseline_path), findings)
    loaded = load_baseline(str(baseline_path))
    assert filter_findings(findings, loaded) == []
    # One budget unit per occurrence: a fresh duplicate is reported.
    doubled = findings + [findings[0]]
    leftover = filter_findings(doubled, loaded)
    assert len(leftover) == 1


def test_baseline_via_cli(tmp_path, capsys):
    bad = str(FIXTURES / "r8_bad.py")
    baseline_path = str(tmp_path / "baseline.json")
    assert reprolint_main([bad, "--write-baseline", baseline_path]) == 0
    capsys.readouterr()
    assert reprolint_main([bad, "--baseline", baseline_path]) == 0


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_json_format(capsys):
    code = reprolint_main([str(FIXTURES / "r6_bad.py"), "--format=json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] >= 1
    assert payload["files_checked"] == 1
    assert all(
        {"rule", "path", "line", "col", "message"} <= set(f)
        for f in payload["findings"]
    )


def test_cli_usage_errors(capsys):
    assert reprolint_main([]) == 2
    assert reprolint_main(["src", "--rules", "R99"]) == 2


def test_cli_rule_selection(capsys):
    # r8_bad also has no R1 issues; selecting only R1 must exit clean.
    assert reprolint_main([str(FIXTURES / "r8_bad.py"), "--rules", "R1"]) == 0


def test_cli_list_rules(capsys):
    assert reprolint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


# ---------------------------------------------------------------------------
# Meta: the committed tree lints clean, with a bounded suppression budget
# ---------------------------------------------------------------------------

def test_repo_src_lints_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "reprolint", "src", "--format=json"],
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(TOOLS_DIR), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["findings"] == []


def test_repo_suppression_budget():
    # Acceptance criterion: at most 5 reasoned suppressions across src/.
    total = 0
    for path in sorted((REPO_ROOT / "src").rglob("*.py")):
        ann = parse_annotations(path.read_text(encoding="utf-8"))
        for sups in ann.suppressions.values():
            for sup in sups:
                assert sup.reason, f"{path}: suppression without reason"
                total += 1
    assert total <= 5, f"{total} suppressions exceed the budget of 5"


def test_deterministic_zones_declared():
    # The zone map from ISSUE 8: core/, optimizer/, ibg/, service/snapshot.py
    # — plus service/wal.py since ISSUE 9 (recovery replay must be
    # deterministic for step-identity to hold) and service/scheduler.py
    # since ISSUE 10 (batch formation must be a pure function of queue
    # content for drain-record replay to reproduce analysis order).
    expected = (
        list((REPO_ROOT / "src/repro/core").glob("*.py"))
        + list((REPO_ROOT / "src/repro/optimizer").glob("*.py"))
        + list((REPO_ROOT / "src/repro/ibg").glob("*.py"))
        + [
            REPO_ROOT / "src/repro/service/scheduler.py",
            REPO_ROOT / "src/repro/service/snapshot.py",
            REPO_ROOT / "src/repro/service/wal.py",
        ]
    )
    for path in expected:
        ann = parse_annotations(path.read_text(encoding="utf-8"))
        assert ann.deterministic, f"{path} lacks the deterministic-zone pragma"


# ---------------------------------------------------------------------------
# mypy gate (config sanity always; the real run only when mypy is present)
# ---------------------------------------------------------------------------

def test_mypy_config_pins_strict_modules():
    config = configparser.ConfigParser()
    config.read(REPO_ROOT / "mypy.ini")
    for section in (
        "mypy-repro.core.bitset",
        "mypy-repro.core.wfa_kernel",
        "mypy-repro.obs.registry",
    ):
        assert config.getboolean(section, "disallow_untyped_defs")
        assert not config.getboolean(section, "ignore_errors")
    assert (REPO_ROOT / "src/repro/py.typed").exists()


def test_mypy_passes_when_available():
    pytest.importorskip("mypy")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini",
         "src/repro"],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
