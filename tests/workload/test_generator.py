"""Tests for the benchmark workload generator."""

from __future__ import annotations

import pytest

from repro.db import build_catalog
from repro.query.ast import (
    DeleteStatement,
    InsertStatement,
    SelectQuery,
    UpdateStatement,
)
from repro.workload import (
    DEFAULT_PHASES,
    WorkloadGenerator,
    generate_workload,
    scaled_phases,
)


@pytest.fixture(scope="module")
def catalog_and_stats():
    return build_catalog(scale=0.01)


@pytest.fixture(scope="module")
def workload(catalog_and_stats):
    catalog, stats = catalog_and_stats
    return generate_workload(catalog, stats, scaled_phases(40), seed=11)


class TestGeneration:
    def test_length(self, workload):
        assert len(workload) == 8 * 40

    def test_deterministic(self, catalog_and_stats):
        catalog, stats = catalog_and_stats
        first = generate_workload(catalog, stats, scaled_phases(10), seed=3)
        second = generate_workload(catalog, stats, scaled_phases(10), seed=3)
        assert first.statements == second.statements

    def test_seed_changes_workload(self, catalog_and_stats):
        catalog, stats = catalog_and_stats
        first = generate_workload(catalog, stats, scaled_phases(10), seed=3)
        second = generate_workload(catalog, stats, scaled_phases(10), seed=4)
        assert first.statements != second.statements

    def test_contains_reads_and_writes(self, workload):
        kinds = {type(s) for s in workload}
        assert SelectQuery in kinds
        assert kinds & {UpdateStatement, InsertStatement, DeleteStatement}

    def test_phase_dataset_focus(self, workload):
        """Statements of each phase predominantly hit its focused datasets."""
        for phase, (name, start) in zip(DEFAULT_PHASES, workload.phase_boundaries):
            end = start + 40
            allowed = set(phase.dataset_weights)
            for statement in workload.statements[start:end]:
                datasets = {t.split(".")[0] for t in statement.tables_referenced()}
                assert datasets <= allowed, (name, datasets)

    def test_update_fractions_roughly_respected(self, workload):
        for phase, (name, start) in zip(DEFAULT_PHASES, workload.phase_boundaries):
            chunk = workload.statements[start:start + 40]
            fraction = sum(1 for s in chunk if s.is_update) / len(chunk)
            assert abs(fraction - phase.update_fraction) < 0.25, name

    def test_predicates_within_column_domains(self, workload, catalog_and_stats):
        _, stats = catalog_and_stats
        for statement in workload:
            for table in statement.tables_referenced():
                for pred in statement.predicates_on(table):
                    if not hasattr(pred, "lo"):
                        continue
                    col = stats.column_stats(table, pred.column.column)
                    if pred.lo is not None:
                        assert pred.lo >= col.min_value - 1e-6
                    if pred.hi is not None:
                        assert pred.hi <= col.max_value + 1e-6

    def test_queries_have_predicates(self, workload):
        for statement in workload:
            if isinstance(statement, SelectQuery):
                assert statement.predicates or statement.joins

    def test_joins_reference_valid_tables(self, workload, catalog_and_stats):
        catalog, _ = catalog_and_stats
        for statement in workload:
            for table in statement.tables_referenced():
                assert catalog.has_table(table)

    def test_templates_repeat_with_jitter(self, catalog_and_stats):
        """The same template yields different literals across instances."""
        catalog, stats = catalog_and_stats
        workload = generate_workload(catalog, stats, scaled_phases(60), seed=5)
        selects = [s for s in workload if isinstance(s, SelectQuery)]
        shapes = {}
        for query in selects:
            key = (query.tables, tuple(p.column for p in query.predicates))
            shapes.setdefault(key, []).append(query)
        repeated = [group for group in shapes.values() if len(group) > 3]
        assert repeated, "expected repeated templates"
        group = max(repeated, key=len)
        assert len(set(group)) > 1, "literals should jitter"
