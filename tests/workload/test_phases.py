"""Tests for the phase schedule."""

from __future__ import annotations

import pytest

from repro.workload.phases import DEFAULT_PHASES, PhaseSpec, scaled_phases


class TestPhaseSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseSpec("p", {}, 0.1)
        with pytest.raises(ValueError):
            PhaseSpec("p", {"tpch": -1.0}, 0.1)
        with pytest.raises(ValueError):
            PhaseSpec("p", {"tpch": 1.0}, 1.5)
        with pytest.raises(ValueError):
            PhaseSpec("p", {"tpch": 1.0}, 0.1, statement_count=0)
        with pytest.raises(ValueError):
            PhaseSpec("p", {"tpch": 1.0}, 0.1, template_count=0)

    def test_with_statement_count(self):
        phase = DEFAULT_PHASES[0].with_statement_count(37)
        assert phase.statement_count == 37
        assert phase.name == DEFAULT_PHASES[0].name


class TestDefaultSchedule:
    def test_eight_phases(self):
        assert len(DEFAULT_PHASES) == 8

    def test_default_statement_count_matches_paper(self):
        assert all(p.statement_count == 200 for p in DEFAULT_PHASES)

    def test_adjacent_phases_overlap_in_datasets(self):
        """§6.1: adjacent phases overlap in the focused data sets."""
        for first, second in zip(DEFAULT_PHASES, DEFAULT_PHASES[1:]):
            shared = set(first.dataset_weights) & set(second.dataset_weights)
            assert shared, (first.name, second.name)

    def test_update_fraction_varies(self):
        fractions = {p.update_fraction for p in DEFAULT_PHASES}
        assert len(fractions) >= 4

    def test_all_datasets_featured(self):
        datasets = set()
        for phase in DEFAULT_PHASES:
            datasets.update(phase.dataset_weights)
        assert datasets == {"tpcc", "tpch", "tpce", "nref"}

    def test_scaled_phases(self):
        scaled = scaled_phases(25)
        assert all(p.statement_count == 25 for p in scaled)
        assert len(scaled) == len(DEFAULT_PHASES)
