"""Tests for the Workload container."""

from __future__ import annotations

import pytest

from repro.query import parse_statement
from repro.workload.trace import Workload


@pytest.fixture()
def workload():
    statements = [
        parse_statement(f"SELECT count(*) FROM d.t WHERE a BETWEEN {i} AND {i + 1}")
        for i in range(10)
    ]
    statements[4] = parse_statement("UPDATE d.t SET b = 1 WHERE a BETWEEN 1 AND 2")
    return Workload(statements, [("alpha", 0), ("beta", 5)])


class TestWorkload:
    def test_len_and_iteration(self, workload):
        assert len(workload) == 10
        assert len(list(workload)) == 10

    def test_counts(self, workload):
        assert workload.update_count == 1
        assert workload.query_count == 9

    def test_phase_of(self, workload):
        assert workload.phase_of(0) == "alpha"
        assert workload.phase_of(4) == "alpha"
        assert workload.phase_of(5) == "beta"
        assert workload.phase_of(9) == "beta"
        with pytest.raises(IndexError):
            workload.phase_of(10)

    def test_prefix_preserves_boundaries(self, workload):
        prefix = workload.prefix(7)
        assert len(prefix) == 7
        assert prefix.phase_boundaries == (("alpha", 0), ("beta", 5))

    def test_prefix_drops_later_boundaries(self, workload):
        prefix = workload.prefix(3)
        assert prefix.phase_boundaries == (("alpha", 0),)

    def test_slice_requires_contiguity(self, workload):
        with pytest.raises(ValueError):
            workload[::2]

    def test_invalid_boundary_rejected(self, workload):
        with pytest.raises(ValueError):
            Workload(list(workload), [("x", 99)])

    def test_summary_mentions_phases(self, workload):
        text = workload.summary()
        assert "alpha" in text and "beta" in text
        assert "10 statements" in text

    def test_to_sql_lines(self, workload):
        lines = workload.to_sql_lines()
        assert len(lines) == 10
        assert lines[0].startswith("SELECT")
