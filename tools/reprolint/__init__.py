"""reprolint — AST-based contract checker for this repository's invariants.

The repo's correctness story rests on conventions the test suite can only
probe pointwise: bit-identical work-function backends need fixed iteration
and float-summation order, the service layer's thread-safety needs every
guarded attribute touched only under its lock, and the telemetry layer's
"near-zero-cost when disabled" contract needs every recording call behind
the one-attribute ``obs.state.enabled`` check. reprolint makes those
conventions machine-checked *at the source level*, so they hold on every
input — not just the ones hypothesis happens to draw.

Rules (see :mod:`reprolint.rules` for the full statements):

========  ==================================================================
R1        determinism: no wall-clock / unseeded-RNG reads in deterministic
          zones (``# reprolint: zone=deterministic`` module pragma)
R2        ordered iteration: no accumulation over unordered set iteration
          in deterministic zones
R3        guarded-by lock discipline: ``# guarded-by: <lock>`` attributes
          only touched under ``with self.<lock>:`` or ``# holds: <lock>``
R4        lock ordering: the static acquisition graph must be acyclic
R5        obs gating: metric recording calls must sit behind the
          documented ``obs.state.enabled`` check
R6        snapshot purity: serialization functions must not emit
          unordered set values
R7        float-reduction order: no ``sum()`` over set-typed iterables in
          deterministic zones
R8        forbidden APIs: bare ``except:``, mutable default arguments,
          ``assert`` in deterministic zones
========  ==================================================================

Per-line escapes need a reason: ``# reprolint: disable=R1(why this is
safe)``. Machine-readable output (``--format=json``) and a ``--baseline``
file let the rule set grow without flag-day churn.

Usage::

    PYTHONPATH=tools python -m reprolint src/ [--format=json] [--baseline F]
"""

from .engine import check_file, check_paths
from .rules import Finding, RULES

__version__ = "1.0"

__all__ = ["Finding", "RULES", "check_file", "check_paths", "__version__"]
