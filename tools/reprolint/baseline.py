"""Baseline files: accepted pre-existing findings, keyed by content.

A baseline entry is ``(rule, path, message)`` with a count — line numbers
are deliberately excluded so unrelated edits above a finding don't churn
the file. ``filter_findings`` consumes baseline budget per key: if the
baseline allows 2 occurrences and the tree now has 3, one is reported.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .rules import Finding

__all__ = ["load_baseline", "save_baseline", "filter_findings"]

BaselineKey = Tuple[str, str, str]


def load_baseline(path: str) -> Counter:
    """Load a baseline file into a key -> allowed-count counter."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    counts: Counter = Counter()
    for entry in payload.get("findings", []):
        key = (entry["rule"], entry["path"], entry["message"])
        counts[key] += int(entry.get("count", 1))
    return counts


def save_baseline(path: str, findings: Iterable[Finding]) -> None:
    counts: Counter = Counter(f.key() for f in findings)
    entries: List[Dict[str, object]] = [
        {"rule": rule, "path": fpath, "message": message, "count": count}
        for (rule, fpath, message), count in sorted(counts.items())
    ]
    Path(path).write_text(
        json.dumps({"version": 1, "findings": entries}, indent=2,
                   sort_keys=True) + "\n",
        encoding="utf-8",
    )


def filter_findings(findings: Iterable[Finding],
                    baseline: Counter) -> List[Finding]:
    """Drop findings covered by remaining baseline budget."""
    budget = Counter(baseline)
    out: List[Finding] = []
    for finding in findings:
        key = finding.key()
        if budget[key] > 0:
            budget[key] -= 1
        else:
            out.append(finding)
    return out
