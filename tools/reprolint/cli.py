"""Command line entry point.

Exit codes: 0 clean, 1 findings, 2 usage/internal error — the same
contract as the repo's perf gate, so CI treats them uniformly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from . import __version__
from .baseline import filter_findings, load_baseline, save_baseline
from .engine import check_paths
from .rules import RULES, Finding


def _format_text(findings: Sequence[Finding]) -> str:
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}"
        for f in findings
    ]
    lines.append(
        f"reprolint: {len(findings)} finding(s)" if findings
        else "reprolint: clean"
    )
    return "\n".join(lines)


def _format_json(findings: Sequence[Finding], checked: int) -> str:
    return json.dumps(
        {
            "version": __version__,
            "files_checked": checked,
            "findings": [f.to_payload() for f in findings],
            "count": len(findings),
        },
        indent=2,
        sort_keys=True,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based contract checker for this repo's "
                    "determinism, lock-discipline, and obs-gating "
                    "invariants.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--baseline", metavar="FILE",
                        help="accepted-findings file; covered findings "
                             "are not reported")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write current findings as the new baseline "
                             "and exit 0")
    parser.add_argument("--rules", metavar="R1,R3,...",
                        help="run only these rules")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--version", action="version",
                        version=f"reprolint {__version__}")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, (desc, zone_only, _fn) in RULES.items():
            scope = "deterministic zones" if zone_only else "all files"
            print(f"{rule_id}  [{scope}]  {desc}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("reprolint: error: no paths given", file=sys.stderr)
        return 2

    rules: Optional[List[str]] = None
    if args.rules:
        rules = [r.strip().upper() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules if r not in RULES and r != "SUP"]
        if unknown:
            print(f"reprolint: error: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    try:
        findings, results = check_paths(args.paths, rules=rules)
    except OSError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        save_baseline(args.write_baseline, findings)
        print(f"reprolint: wrote baseline ({len(findings)} finding(s)) "
              f"to {args.write_baseline}")
        return 0

    if args.baseline:
        try:
            findings = filter_findings(findings, load_baseline(args.baseline))
        except (OSError, ValueError, KeyError) as exc:
            print(f"reprolint: error: bad baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2

    if args.format == "json":
        print(_format_json(findings, len(results)))
    else:
        print(_format_text(findings))
    return 1 if findings else 0
