"""File-level orchestration: parse, annotate, run rules, apply suppressions.

``check_file`` returns per-file findings plus the file's lock-acquisition
edges; ``check_paths`` walks directories, merges edges, and runs the
cross-file R4 cycle check at the end.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple

from .pragmas import FileAnnotations, parse_annotations
from .rules import (
    Finding,
    LockEdge,
    RULES,
    _attach_class_set_attrs,
    check_lock_graph,
    collect_lock_edges,
)

__all__ = ["FileResult", "check_file", "check_paths"]


@dataclass
class FileResult:
    path: str
    findings: List[Finding] = field(default_factory=list)
    lock_edges: List[LockEdge] = field(default_factory=list)
    annotations: FileAnnotations = field(default_factory=FileAnnotations)


def check_file(path: str, source: str | None = None,
               rules: Sequence[str] | None = None) -> FileResult:
    """Run every (selected) rule on one file.

    Suppressions are applied here — a finding covered by a
    ``disable=RULE(reason)`` on its line (or the line above) is dropped
    and the suppression marked used. Malformed annotations (disable
    without a reason, unparseable source) surface as ``SUP`` findings so
    they cannot silently turn a rule off.
    """
    if source is None:
        source = Path(path).read_text(encoding="utf-8")
    result = FileResult(path=path)
    ann = parse_annotations(source)
    result.annotations = ann
    for line, message in ann.errors:
        result.findings.append(Finding("SUP", path, line, 0, message))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(Finding(
            "SUP", path, exc.lineno or 1, 0, f"syntax error: {exc.msg}",
        ))
        return result

    _attach_class_set_attrs(tree)

    raw: List[Finding] = []
    for rule_id, (_desc, _zone_only, fn) in RULES.items():
        if fn is None:
            continue
        if rules is not None and rule_id not in rules:
            continue
        fn(tree, ann, path, raw.append)

    for finding in raw:
        if ann.suppressed(finding.rule, finding.line) is None:
            result.findings.append(finding)

    if rules is None or "R4" in rules:
        result.lock_edges = collect_lock_edges(tree, ann, path)
    result.findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return result


def _iter_python_files(paths: Iterable[str]) -> List[str]:
    out: List[str] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(str(f) for f in sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            out.append(str(p))
    # De-dup while keeping deterministic order.
    seen = set()
    unique = []
    for f in out:
        if f not in seen:
            seen.add(f)
            unique.append(f)
    return unique


def check_paths(paths: Iterable[str],
                rules: Sequence[str] | None = None,
                ) -> Tuple[List[Finding], List[FileResult]]:
    """Check every ``.py`` under ``paths``; returns (findings, file results).

    The cross-file R4 cycle check runs once over the merged acquisition
    graph — a cycle spanning two modules is exactly the case a per-file
    pass cannot see.
    """
    results = [check_file(path, rules=rules) for path in _iter_python_files(paths)]
    findings: List[Finding] = []
    edges: List[LockEdge] = []
    for res in results:
        findings.extend(res.findings)
        edges.extend(res.lock_edges)
    if rules is None or "R4" in rules:
        findings.extend(check_lock_graph(edges))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, results
