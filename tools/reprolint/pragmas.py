"""Comment-level annotations: zones, suppressions, guarded-by, holds.

All reprolint annotations live in comments so they are invisible to the
runtime and to other tools. The grammar, by example::

    # reprolint: zone=deterministic          (module pragma, anywhere)
    # reprolint: lock-alias _wakeup=_ingest_lock
    # reprolint: disable=R1(timing is observability-only)
    self._queue = deque()  # guarded-by: _ingest_lock
    def _analyze(self, ...):  # holds: _pump_lock

``disable`` must name a rule *and* carry a parenthesized reason; a bare
``disable=R1`` is itself reported (rule ``SUP``). ``guarded-by`` and
``holds`` accept a comma-separated list of lock attribute names.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["FileAnnotations", "Suppression", "parse_annotations"]

_DISABLE_RE = re.compile(
    r"reprolint:\s*disable=(?P<rule>[A-Z][A-Z0-9]*)"
    r"(?:\((?P<reason>[^)]*)\))?"
)
_ZONE_RE = re.compile(r"reprolint:\s*zone=(?P<zone>[a-z-]+)")
_ALIAS_RE = re.compile(
    r"reprolint:\s*lock-alias\s+(?P<alias>\w+)\s*=\s*(?P<target>\w+)"
)
_GUARDED_RE = re.compile(r"guarded-by:\s*(?P<locks>[\w, ]+)")
_HOLDS_RE = re.compile(r"holds:\s*(?P<locks>[\w, ]+)")


@dataclass
class Suppression:
    """One ``disable=RULE(reason)`` comment."""

    rule: str
    reason: str
    line: int
    used: bool = False


@dataclass
class FileAnnotations:
    """Everything the comment pass extracted from one file."""

    zone: str = ""
    #: line -> suppressions declared on that line
    suppressions: Dict[int, List[Suppression]] = field(default_factory=dict)
    #: line -> lock names declared by a guarded-by comment on that line
    guarded: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    #: line -> lock names declared by a holds comment on that line
    holds: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    #: alias lock name -> canonical lock name (e.g. a Condition wrapping
    #: the same underlying lock)
    lock_aliases: Dict[str, str] = field(default_factory=dict)
    #: malformed annotations: (line, message)
    errors: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def deterministic(self) -> bool:
        return self.zone == "deterministic"

    def canonical_lock(self, name: str) -> str:
        return self.lock_aliases.get(name, name)

    def suppressed(self, rule: str, line: int) -> Suppression | None:
        """The suppression covering ``(rule, line)``, if any.

        A disable comment covers its own line and the line directly below
        it (so it can sit on its own line above a flagged statement).
        """
        for at in (line, line - 1):
            for sup in self.suppressions.get(at, ()):
                if sup.rule == rule:
                    sup.used = True
                    return sup
        return None


def _split_locks(raw: str) -> Tuple[str, ...]:
    return tuple(name.strip() for name in raw.split(",") if name.strip())


def parse_annotations(source: str) -> FileAnnotations:
    """Extract reprolint annotations from ``source``'s comments."""
    ann = FileAnnotations()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError) as exc:
        ann.errors.append((1, f"tokenize failed: {exc}"))
        return ann
    for line, text in comments:
        match = _ZONE_RE.search(text)
        if match:
            ann.zone = match.group("zone")
        match = _ALIAS_RE.search(text)
        if match:
            ann.lock_aliases[match.group("alias")] = match.group("target")
        for match in _DISABLE_RE.finditer(text):
            reason = (match.group("reason") or "").strip()
            if not reason:
                ann.errors.append((
                    line,
                    f"disable={match.group('rule')} needs a reason: "
                    f"write disable={match.group('rule')}(why this is safe)",
                ))
                continue
            ann.suppressions.setdefault(line, []).append(
                Suppression(match.group("rule"), reason, line)
            )
        match = _GUARDED_RE.search(text)
        if match and "guarded-by:" in text:
            ann.guarded[line] = _split_locks(match.group("locks"))
        match = _HOLDS_RE.search(text)
        if match and "holds:" in text and "guarded-by:" not in text:
            ann.holds[line] = _split_locks(match.group("locks"))
    return ann
