"""The rule implementations. Stdlib ``ast`` only — no third-party deps.

Every rule is a function ``rule(tree, ann, path, report)`` where ``report``
is called with ``Finding`` objects; :data:`RULES` maps rule id to
``(description, zone_only, fn)``. Static analysis is necessarily
approximate; each rule documents what it can and cannot see, and errs
toward *flagging* inside the narrow patterns it understands rather than
guessing at the whole language.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .pragmas import FileAnnotations

__all__ = ["Finding", "LockEdge", "RULES", "check_lock_graph"]


@dataclass
class Finding:
    """One rule violation."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_payload(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers churn, messages rarely do."""
        return (self.rule, self.path, self.message)


@dataclass(frozen=True)
class LockEdge:
    """``outer`` is held (lexically or via ``holds:``) when ``inner`` is
    acquired — one edge of the static acquisition graph R4 checks."""

    outer: str
    inner: str
    path: str
    line: int


# ---------------------------------------------------------------------------
# Shared inference helpers
# ---------------------------------------------------------------------------

_SET_ANNOTATION_NAMES = {
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
}

_WALL_CLOCK_TIME = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "thread_time", "thread_time_ns",
}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "sample", "shuffle", "gauss", "seed", "getrandbits", "betavariate",
    "expovariate", "normalvariate", "triangular", "vonmisesvariate",
}

_SERIALIZER_NAME_PREFIXES = ("export", "to_payload", "checkpoint",
                             "snapshot", "save_")
_SERIALIZER_EXACT_NAMES = {"metrics", "export", "export_chrome"}


def _annotation_is_set(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATION_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATION_NAMES
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("[", 1)[0].strip()
        return head.rsplit(".", 1)[-1] in _SET_ANNOTATION_NAMES
    return False


class _SetTypes:
    """Best-effort "is this expression an unordered set?" inference.

    Knows: set displays / comprehensions, ``set()`` / ``frozenset()``
    calls, set-algebra ``BinOp`` over known sets, names assigned or
    annotated set-like in the enclosing function, parameters annotated
    ``AbstractSet``-like, and ``self.<attr>`` slots whose declaration
    (assignment or annotation, anywhere in the class) is set-like.
    Anything else is assumed ordered — under-approximation is the price
    of zero false positives on mask/list-heavy kernel code.
    """

    def __init__(self, class_set_attrs: Set[str]) -> None:
        self._class_set_attrs = class_set_attrs
        self._set_names: Set[str] = set()

    def observe_function(self, fn: ast.AST) -> None:
        self._set_names = set()
        if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = list(fn.args.posonlyargs) + list(fn.args.args) + \
                list(fn.args.kwonlyargs)
            for arg in args:
                if _annotation_is_set(arg.annotation):
                    self._set_names.add(arg.arg)
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and self.is_set(node.value):
                        self._set_names.add(target.id)
                elif isinstance(node, ast.AnnAssign):
                    if isinstance(node.target, ast.Name) and (
                        _annotation_is_set(node.annotation)
                        or (node.value is not None and self.is_set(node.value))
                    ):
                        self._set_names.add(node.target.id)

    def is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        if isinstance(node, ast.Name):
            return node.id in self._set_names
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == "self":
                return node.attr in self._class_set_attrs
        return False


def _class_set_attrs(klass: ast.ClassDef) -> Set[str]:
    """``self.<attr>`` slots declared set-like anywhere in the class."""
    probe = _SetTypes(set())
    out: Set[str] = set()
    for node in ast.walk(klass):
        target: Optional[ast.expr] = None
        annotation: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, annotation, value = node.target, node.annotation, node.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            if _annotation_is_set(annotation) or (
                value is not None and probe.is_set(value)
            ):
                out.add(target.attr)
    return out


def _is_obs_gate(test: ast.expr) -> bool:
    """Does this ``if`` test consult the documented obs enablement flag?"""
    text = ast.unparse(test)
    return (
        "obs.state.enabled" in text
        or "obs.enabled()" in text
        or text == "state.enabled"
        or text.endswith(".state.enabled")
    )


def _walk_gated(node: ast.AST, gated: bool):
    """Yield ``(child, gated)`` where ``gated`` is true only for code on the
    obs-enabled branch of an ``if obs.state.enabled:`` test."""
    for child in ast.iter_child_nodes(node):
        if isinstance(node, ast.If) and _is_obs_gate(node.test):
            child_gated = gated or (child in node.body)
        else:
            child_gated = gated
        yield child, child_gated
        yield from _walk_gated(child, child_gated)


def _imports_obs(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name.split(".")[-1] == "obs" for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[-1] == "obs":
                return True
            if any(alias.name == "obs" for alias in node.names):
                return True
    return False


Report = Callable[[Finding], None]


# ---------------------------------------------------------------------------
# R1 — determinism: no wall-clock / unseeded RNG in deterministic zones
# ---------------------------------------------------------------------------

def rule_r1(tree: ast.Module, ann: FileAnnotations, path: str,
            report: Report) -> None:
    """Deterministic zones must not read wall clocks or the process-global
    RNG. Exemption: reads lexically on the body of an
    ``if obs.state.enabled:`` gate are observability-only — the obs on/off
    bit-identity property test proves that branch cannot feed tuning
    state. Seeded ``random.Random(seed)`` instances are fine; the banned
    surface is the *ambient* nondeterminism."""
    if not ann.deterministic:
        return

    def flag(node: ast.AST, what: str) -> None:
        report(Finding(
            "R1", path, node.lineno, node.col_offset,
            f"deterministic zone reads {what}; thread the value in or use "
            f"a seeded RNG (obs-gated timing is exempt)",
        ))

    for node, gated in _walk_gated(tree, False):
        if gated:
            continue
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            base, attr = node.value.id, node.attr
            if base == "time" and attr in _WALL_CLOCK_TIME:
                flag(node, f"time.{attr}")
            elif base == "datetime" and attr in _WALL_CLOCK_DATETIME:
                flag(node, f"datetime.{attr}")
            elif base == "random" and attr in _GLOBAL_RANDOM_FNS:
                flag(node, f"the unseeded global RNG (random.{attr})")
        elif isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Attribute
        ):
            inner = node.value
            if (
                isinstance(inner.value, ast.Name)
                and inner.value.id == "datetime"
                and inner.attr == "datetime"
                and node.attr in _WALL_CLOCK_DATETIME
            ):
                flag(node, f"datetime.datetime.{node.attr}")
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr == "Random"
                and not node.args
                and not node.keywords
            ):
                flag(node, "an unseeded random.Random()")
        elif isinstance(node, ast.ImportFrom) and node.module in (
            "time", "datetime", "random"
        ):
            banned = {
                "time": _WALL_CLOCK_TIME,
                "datetime": _WALL_CLOCK_DATETIME,
                "random": _GLOBAL_RANDOM_FNS,
            }[node.module]
            for alias in node.names:
                if alias.name in banned:
                    flag(node, f"{node.module}.{alias.name} (direct import)")


# ---------------------------------------------------------------------------
# R2 — ordered iteration: no accumulation over set iteration in det zones
# ---------------------------------------------------------------------------

_ACCUMULATOR_METHODS = {"append", "extend", "appendleft", "write"}


def _body_accumulates(body: Sequence[ast.stmt]) -> Optional[ast.AST]:
    """The first order-sensitive accumulation inside a loop body, if any.

    ``+=`` (float/str/list accumulation) and ``.append``/``.extend`` calls
    count; bitwise/int-exact augmented ops (``|= &= ^=``) are commutative
    and exact, so they do not."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult)
            ):
                return node
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ACCUMULATOR_METHODS
            ):
                return node
    return None


def rule_r2(tree: ast.Module, ann: FileAnnotations, path: str,
            report: Report) -> None:
    """Iterating a set while accumulating (``+=``, ``.append``) makes the
    result depend on hash order, hence on ``PYTHONHASHSEED`` — the exact
    failure mode behind cross-process float drift. Wrap the iterable in
    ``sorted()`` (or restructure onto an ordered container)."""
    if not ann.deterministic:
        return
    for scope in ast.walk(tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        klass_attrs: Set[str] = set()
        # Cheap and good enough: set-typed self attributes are collected
        # per module pass in rule driver via closure (see _run_r2_class).
        types = _SetTypes(getattr(scope, "_reprolint_set_attrs", klass_attrs))
        types.observe_function(scope)
        for node in ast.walk(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not scope:
                continue
            if isinstance(node, ast.For) and types.is_set(node.iter):
                acc = _body_accumulates(node.body)
                if acc is not None:
                    report(Finding(
                        "R2", path, node.lineno, node.col_offset,
                        "accumulation over unordered set iteration "
                        f"({ast.unparse(node.iter)}); wrap the iterable in "
                        "sorted()",
                    ))


def _attach_class_set_attrs(tree: ast.Module) -> None:
    """Annotate every method node with its class's set-typed attributes so
    R2/R7 can resolve ``self.<attr>`` iterables."""
    for klass in ast.walk(tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        attrs = _class_set_attrs(klass)
        for node in ast.walk(klass):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                node._reprolint_set_attrs = attrs  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# R3 — guarded-by lock discipline
# ---------------------------------------------------------------------------

def _with_locks(node: ast.With, ann: FileAnnotations) -> List[str]:
    out = []
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            out.append(ann.canonical_lock(expr.attr))
    return out


def _def_holds(fn: ast.AST, ann: FileAnnotations) -> Set[str]:
    locks: Set[str] = set()
    for line in (fn.lineno, fn.lineno - 1):
        for name in ann.holds.get(line, ()):
            locks.add(ann.canonical_lock(name))
    return locks


def rule_r3(tree: ast.Module, ann: FileAnnotations, path: str,
            report: Report) -> None:
    """Attributes declared ``# guarded-by: <lock>`` may only be touched
    inside ``with self.<lock>:`` (alias-resolved) or in a method carrying
    ``# holds: <lock>``. ``__init__``/``__new__`` are exempt —
    construction happens-before sharing. Scope: accesses through ``self``
    within the declaring class; cross-object accesses need their own
    discipline (and show up in review, not here)."""
    if not ann.guarded:
        return
    for klass in ast.walk(tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        # Resolve which guarded-by declarations belong to this class: the
        # annotated line must carry a self.<attr> (or bare name in class
        # body) assignment inside the class span.
        guarded: Dict[str, Tuple[str, ...]] = {}
        for node in ast.walk(klass):
            target: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and node.targets:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            else:
                continue
            locks = ann.guarded.get(node.lineno)
            if not locks:
                continue
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                guarded[target.attr] = tuple(
                    ann.canonical_lock(name) for name in locks
                )
        if not guarded:
            continue

        def check_fn(fn: ast.AST, held: Set[str]) -> None:
            def visit(node: ast.AST, held: Set[str]) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef, ast.Lambda)):
                        # A nested def runs later, not under these locks.
                        visit(child, _def_holds(child, ann))
                        continue
                    child_held = held
                    if isinstance(child, ast.With):
                        acquired = _with_locks(child, ann)
                        if acquired:
                            child_held = held | set(acquired)
                    if (
                        isinstance(child, ast.Attribute)
                        and isinstance(child.value, ast.Name)
                        and child.value.id == "self"
                        and child.attr in guarded
                    ):
                        needed = guarded[child.attr]
                        if not any(lock in held for lock in needed):
                            report(Finding(
                                "R3", path, child.lineno, child.col_offset,
                                f"{klass.name}.{child.attr} is guarded by "
                                f"{' / '.join(needed)} but accessed without "
                                f"it (wrap in `with self.{needed[0]}:` or "
                                f"mark the method `# holds: {needed[0]}`)",
                            ))
                    visit(child, child_held)

            visit(fn, held)

        for method in klass.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in ("__init__", "__new__"):
                continue
            check_fn(method, _def_holds(method, ann))


# ---------------------------------------------------------------------------
# R4 — lock-ordering acquisition graph
# ---------------------------------------------------------------------------

def collect_lock_edges(tree: ast.Module, ann: FileAnnotations,
                       path: str) -> List[LockEdge]:
    """Lexical ``with <lock>`` nesting (plus ``holds:`` context) as
    acquisition-order edges, by lock attribute name. Nested function
    bodies reset the held set — a closure runs later, not under the
    enclosing ``with``."""
    edges: List[LockEdge] = []

    def lock_names(node: ast.With) -> List[str]:
        out = []
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Attribute) and expr.attr.endswith("lock"):
                out.append(ann.canonical_lock(expr.attr))
            elif (
                isinstance(expr, ast.Attribute)
                and ann.canonical_lock(expr.attr) != expr.attr
            ):
                out.append(ann.canonical_lock(expr.attr))
        return out

    def visit(node: ast.AST, held: Tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            child_held = held
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                visit(child, tuple(sorted(_def_holds(child, ann))))
                continue
            if isinstance(child, ast.With):
                acquired = lock_names(child)
                for inner in acquired:
                    for outer in held:
                        if outer != inner:
                            edges.append(
                                LockEdge(outer, inner, path, child.lineno)
                            )
                if acquired:
                    child_held = held + tuple(
                        name for name in acquired if name not in held
                    )
            visit(child, child_held)

    visit(tree, ())
    return edges


def check_lock_graph(edges: Iterable[LockEdge]) -> List[Finding]:
    """Cycle detection over the merged acquisition graph (all files)."""
    graph: Dict[str, Dict[str, LockEdge]] = {}
    for edge in edges:
        graph.setdefault(edge.outer, {}).setdefault(edge.inner, edge)
    findings: List[Finding] = []
    seen_cycles: Set[Tuple[str, ...]] = set()

    def dfs(node: str, stack: List[str], on_stack: Set[str]) -> None:
        for inner, edge in sorted(graph.get(node, {}).items()):
            if inner in on_stack:
                cycle = stack[stack.index(inner):] + [inner]
                key = tuple(sorted(set(cycle)))
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    findings.append(Finding(
                        "R4", edge.path, edge.line, 0,
                        "lock-order cycle (potential deadlock inversion): "
                        + " -> ".join(cycle),
                    ))
                continue
            dfs(inner, stack + [inner], on_stack | {inner})

    for node in sorted(graph):
        dfs(node, [node], {node})
    return findings


# ---------------------------------------------------------------------------
# R5 — obs gating
# ---------------------------------------------------------------------------

_RECORDING_METHODS = {"inc", "observe", "dec"}


def rule_r5(tree: ast.Module, ann: FileAnnotations, path: str,
            report: Report) -> None:
    """In modules importing ``repro.obs`` (outside ``obs/`` itself), metric
    recording calls (``.inc()`` / ``.observe()`` / ``.dec()``) must sit on
    the body of an ``if obs.state.enabled:`` gate — the documented
    one-attribute check that makes ``REPRO_OBS=0`` a near-zero-cost no-op.
    ``obs.span(...)`` is exempt: it gates internally and returns a shared
    null context manager when disabled."""
    if "/obs/" in path.replace("\\", "/") or not _imports_obs(tree):
        return
    for node, gated in _walk_gated(tree, False):
        if gated:
            continue
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _RECORDING_METHODS
        ):
            report(Finding(
                "R5", path, node.lineno, node.col_offset,
                f"metric recording call .{node.func.attr}() outside the "
                "`if obs.state.enabled:` gate; hot paths must pay one "
                "attribute check, not a lock, when obs is off",
            ))


# ---------------------------------------------------------------------------
# R6 — snapshot purity
# ---------------------------------------------------------------------------

def _is_serializer(fn: ast.AST) -> bool:
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    name = fn.name
    return name in _SERIALIZER_EXACT_NAMES or any(
        name.startswith(prefix) for prefix in _SERIALIZER_NAME_PREFIXES
    )


def rule_r6(tree: ast.Module, ann: FileAnnotations, path: str,
            report: Report) -> None:
    """Serialization functions (``export_state`` / ``to_payload`` /
    ``checkpoint*`` / ``snapshot`` / ``metrics``) must not build set
    values: a set reaching ``json.dumps`` fails, and a set flattened into
    a list leaks hash order into the document. Construct through
    ``sorted()`` instead. (``set``/``frozenset`` calls *inside* a
    ``sorted()`` argument are fine.)"""
    for fn in ast.walk(tree):
        if not _is_serializer(fn):
            continue

        def visit(node: ast.AST, in_sorted: bool) -> None:
            for child in ast.iter_child_nodes(node):
                child_in_sorted = in_sorted
                if isinstance(child, ast.Call):
                    func = child.func
                    if isinstance(func, ast.Name) and func.id == "sorted":
                        child_in_sorted = True
                    elif (
                        not in_sorted
                        and isinstance(func, ast.Name)
                        and func.id in ("set", "frozenset")
                    ):
                        report(Finding(
                            "R6", path, child.lineno, child.col_offset,
                            f"serializer {fn.name}() builds a "
                            f"{func.id}; emit sorted() output instead",
                        ))
                elif isinstance(child, (ast.Set, ast.SetComp)) and not in_sorted:
                    report(Finding(
                        "R6", path, child.lineno, child.col_offset,
                        f"serializer {fn.name}() builds a set "
                        "display/comprehension; emit sorted() output instead",
                    ))
                visit(child, child_in_sorted)

        visit(fn, False)


# ---------------------------------------------------------------------------
# R7 — float-reduction order
# ---------------------------------------------------------------------------

def rule_r7(tree: ast.Module, ann: FileAnnotations, path: str,
            report: Report) -> None:
    """``sum()`` over a set-typed iterable reduces in hash order; float
    addition is not associative, so the total depends on
    ``PYTHONHASHSEED``. Reduce over ``sorted()`` input in kernel/cost
    paths."""
    if not ann.deterministic:
        return
    for scope in ast.walk(tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        types = _SetTypes(
            getattr(scope, "_reprolint_set_attrs", set())
        )
        types.observe_function(scope)
        for node in ast.walk(scope):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
            ):
                continue
            arg = node.args[0]
            iterable: Optional[ast.expr] = None
            if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                iterable = arg.generators[0].iter
            elif isinstance(arg, ast.SetComp):
                report(Finding(
                    "R7", path, node.lineno, node.col_offset,
                    "sum() over a set comprehension reduces in hash order; "
                    "sort the elements first",
                ))
                continue
            else:
                iterable = arg
            if iterable is not None and types.is_set(iterable):
                report(Finding(
                    "R7", path, node.lineno, node.col_offset,
                    f"sum() over set-typed iterable "
                    f"({ast.unparse(iterable)}) reduces in hash order; "
                    "reduce over sorted() input",
                ))


# ---------------------------------------------------------------------------
# R8 — forbidden APIs
# ---------------------------------------------------------------------------

def rule_r8(tree: ast.Module, ann: FileAnnotations, path: str,
            report: Report) -> None:
    """Bare ``except:`` (swallows KeyboardInterrupt/SystemExit), mutable
    default arguments (shared across calls), and — in deterministic zones
    — ``assert`` statements (vanish under ``python -O``; raise explicitly
    on the hot path instead)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            report(Finding(
                "R8", path, node.lineno, node.col_offset,
                "bare except: swallows KeyboardInterrupt/SystemExit; catch "
                "Exception (or narrower) explicitly",
            ))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]:
                mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) \
                    or (
                        isinstance(default, ast.Call)
                        and isinstance(default.func, ast.Name)
                        and default.func.id in ("list", "dict", "set")
                        and not default.args and not default.keywords
                    )
                if mutable:
                    report(Finding(
                        "R8", path, default.lineno, default.col_offset,
                        f"mutable default argument in {node.name}(); default "
                        "to None (or a frozen value) and build inside",
                    ))
        elif isinstance(node, ast.Assert) and ann.deterministic:
            report(Finding(
                "R8", path, node.lineno, node.col_offset,
                "assert in a deterministic-zone hot path vanishes under "
                "python -O; raise an explicit error instead",
            ))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: rule id -> (one-line description, zone_only, checker)
RULES: Dict[str, Tuple[str, bool, Callable[..., None]]] = {
    "R1": ("no wall-clock/unseeded-RNG reads in deterministic zones",
           True, rule_r1),
    "R2": ("no accumulation over unordered set iteration in deterministic "
           "zones", True, rule_r2),
    "R3": ("guarded-by attributes only touched under their lock",
           False, rule_r3),
    "R4": ("static lock-acquisition graph must be acyclic", False, None),
    "R5": ("metric recording calls gated on obs.state.enabled",
           False, rule_r5),
    "R6": ("serializers must not emit unordered set values", False, rule_r6),
    "R7": ("no sum() over set-typed iterables in deterministic zones",
           True, rule_r7),
    "R8": ("no bare except / mutable defaults / deterministic-zone asserts",
           False, rule_r8),
}
